package server

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/reliablesort"
)

// testConfig is a fast simnet-backed server configuration: no real
// backoff sleeps, short absence timeouts.
func testConfig() Config {
	return Config{
		Concurrency: 4,
		QueueDepth:  64,
		// Short absence timeout: honest-path receives are microseconds
		// in-process, and every fault-stricken attempt drains for ~one
		// timeout before the next attempt starts.
		RecvTimeout: 500 * time.Millisecond,
		Spares:      2,
		AllowChaos:  true,
		Sleep:       func(time.Duration) {},
	}
}

// refSorted returns the expected verified output for keys.
func refSorted(keys []int64, descending bool) []int64 {
	out := append([]int64(nil), keys...)
	sort.Slice(out, func(i, j int) bool {
		if descending {
			return out[i] > out[j]
		}
		return out[i] < out[j]
	})
	return out
}

// assertVerified fails the test unless resp.Sorted is exactly the
// reference sort of keys — the client-side silent-wrong detector.
func assertVerified(t *testing.T, keys []int64, resp *Response, descending bool) {
	t.Helper()
	want := refSorted(keys, descending)
	if len(resp.Sorted) != len(want) {
		t.Fatalf("got %d keys, want %d", len(resp.Sorted), len(want))
	}
	for i := range want {
		if resp.Sorted[i] != want[i] {
			t.Fatalf("silent wrong result at %d: got %d want %d", i, resp.Sorted[i], want[i])
		}
	}
}

func TestServerBasicMultiTenant(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	rng := rand.New(rand.NewSource(1))
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		keys := make([]int64, 8+rng.Intn(56))
		for j := range keys {
			keys[j] = rng.Int63n(10000) - 5000
		}
		tenant := fmt.Sprintf("t%d", i%3)
		desc := i%2 == 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Submit(Request{Tenant: tenant, Keys: keys, Descending: desc, Dim: 2})
			if err != nil {
				errs <- err
				return
			}
			want := refSorted(keys, desc)
			for k := range want {
				if resp.Sorted[k] != want[k] {
					errs <- fmt.Errorf("tenant %s: wrong key at %d", tenant, k)
					return
				}
			}
			if resp.Stats.Attempts < 1 || resp.Stats.Nodes != 4 {
				errs <- fmt.Errorf("implausible stats: %+v", resp.Stats)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Pool amortization must be visible: 24 jobs, bounded concurrency,
	// one geometry — far fewer networks built than jobs run.
	ps := s.pool.Stats()
	if ps.Built >= 24 {
		t.Errorf("pool not amortizing: %d networks built for 24 jobs", ps.Built)
	}
	if ps.Reused == 0 {
		t.Error("pool never reused a network")
	}
	st := s.Stats()
	if st.Verified != 24 {
		t.Errorf("verified %d jobs, want 24", st.Verified)
	}
}

// TestServerChaos is the server-level chaos test: message, comparison,
// and memory faults injected into jobs running over pooled networks,
// interleaved with honest jobs. Every job must return either a
// verified (reference-equal) result or a structured error — never a
// silently wrong slice.
func TestServerChaos(t *testing.T) {
	cfg := testConfig()
	cfg.MaxAttempts = 6
	s := New(cfg)
	defer s.Close()

	injections := []*ChaosSpec{
		nil, // honest
		{Class: "message", Node: 1, Strategy: "key-lie", Lie: 999999},
		nil,
		{Class: "comparison", Node: 2, Mode: "cmp-persistent", Rate: 1, Seed: 7},
		{Class: "memory", Node: 3, Mode: "mem-stuck", Rate: 1, Seed: 9, Lie: -42},
		nil,
		{Class: "message", Node: 0, Strategy: "split-lie", Lie: 31337, Transient: true},
		{Class: "comparison", Node: 1, Mode: "cmp-transient", Rate: 1, Seed: 3, Transient: true},
	}
	rng := rand.New(rand.NewSource(2))
	var wg sync.WaitGroup
	type outcome struct {
		idx      int
		verified bool
		err      error
	}
	results := make(chan outcome, len(injections)*2)
	for round := 0; round < 2; round++ {
		for i, inj := range injections {
			keys := make([]int64, 16)
			for j := range keys {
				keys[j] = rng.Int63n(1000)
			}
			idx := round*len(injections) + i
			inj := inj
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := s.Submit(Request{
					Tenant: fmt.Sprintf("chaos%d", idx%2), Keys: keys, Dim: 2, Inject: inj,
				})
				if err != nil {
					// Structured failure is an acceptable outcome — but it
					// must be one of the typed errors, not a mystery.
					var ex interface{ Error() string }
					if !errors.Is(err, reliablesort.ErrFaultDetected) && !errors.As(err, &ex) {
						results <- outcome{idx: idx, err: fmt.Errorf("untyped error: %w", err)}
						return
					}
					results <- outcome{idx: idx, err: err}
					return
				}
				want := refSorted(keys, false)
				for k := range want {
					if resp.Sorted[k] != want[k] {
						results <- outcome{idx: idx, err: fmt.Errorf("SILENT WRONG at %d", k)}
						return
					}
				}
				results <- outcome{idx: idx, verified: true}
			}()
		}
	}
	wg.Wait()
	close(results)
	verified := 0
	for r := range results {
		if r.err != nil {
			// A structured error is allowed; silent wrong is not.
			if se := r.err.Error(); len(se) > 12 && se[:12] == "SILENT WRONG" {
				t.Fatalf("job %d: %v", r.idx, r.err)
			}
			t.Logf("job %d: structured failure: %v", r.idx, r.err)
			continue
		}
		verified++
	}
	// AutoRecover with spares should pull most injected jobs through to
	// a verified result; all honest jobs must verify.
	if verified < 6 {
		t.Errorf("only %d/%d jobs verified", verified, len(injections)*2)
	}
	st := s.Stats()
	if st.Verified != int64(verified) {
		t.Errorf("fleet counter says %d verified, client saw %d", st.Verified, verified)
	}
	// Fault-stricken attempts quarantine their networks instead of
	// recycling them.
	if s.pool.Stats().Discarded == 0 {
		t.Error("chaos run never quarantined a pooled network")
	}
}

// TestServerFailStopWithoutRecovery pins the DisableRecovery path: a
// persistent fault yields a structured *reliablesort.FaultError, not a
// wrong result.
func TestServerFailStopWithoutRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.DisableRecovery = true
	s := New(cfg)
	defer s.Close()

	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5, 31, -6, 14, 0, 22, -9, 17, 1}
	_, err := s.Submit(Request{
		Keys: keys, Dim: 2,
		Inject: &ChaosSpec{Class: "message", Node: 1, Strategy: "key-lie", Lie: 777777},
	})
	if !errors.Is(err, reliablesort.ErrFaultDetected) {
		t.Fatalf("want ErrFaultDetected, got %v", err)
	}
	if s.Stats().Faulted != 1 {
		t.Errorf("fault counter: %+v", s.Stats())
	}
}

// TestServerOverloadBackpressure pins admission control: with one slow
// worker and a depth-2 queue, a burst must see clean ErrOverloaded
// rejections while every accepted job still completes verified.
func TestServerOverloadBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.Concurrency = 1
	cfg.QueueDepth = 2
	s := New(cfg)
	defer s.Close()

	keys := []int64{5, 3, 8, 1, 9, 2, 7, 4}
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, rejected := 0, 0
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Submit(Request{Keys: keys, Dim: 2})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				accepted++
				for k := 1; k < len(resp.Sorted); k++ {
					if resp.Sorted[k-1] > resp.Sorted[k] {
						t.Errorf("accepted job returned unsorted output")
					}
				}
			case errors.Is(err, ErrOverloaded):
				rejected++
			default:
				t.Errorf("unexpected error under load: %v", err)
			}
		}()
	}
	wg.Wait()
	if rejected == 0 {
		t.Error("burst of 16 against depth-2 queue saw no backpressure")
	}
	if accepted == 0 {
		t.Error("every job was rejected")
	}
	if got := s.Stats().Rejected; got != int64(rejected) {
		t.Errorf("rejected counter %d, clients saw %d", got, rejected)
	}
}

// TestServerDrainsGoroutines pins the serve-forever lifecycle: jobs
// through a server leave no goroutines behind once Close drains it.
func TestServerDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(testConfig())
	keys := []int64{9, 1, 8, 2, 7, 3, 6, 4}
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(Request{Keys: keys, Dim: 2}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before+2 {
		t.Errorf("goroutine leak: %d before, %d after Close", before, n)
	}
}

// TestServerValidation pins the admission checks.
func TestServerValidation(t *testing.T) {
	cfg := testConfig()
	cfg.AllowChaos = false
	cfg.MaxKeys = 8
	s := New(cfg)
	defer s.Close()

	cases := []Request{
		{},                          // empty keys
		{Keys: make([]int64, 9)},    // over MaxKeys
		{Keys: []int64{1}, Dim: 99}, // dim out of range
		{Keys: []int64{1}, Inject: &ChaosSpec{Class: "message", Strategy: "key-lie"}}, // chaos disabled
	}
	for i, req := range cases {
		if _, err := s.Submit(req); !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: want ErrInvalid, got %v", i, err)
		}
	}
	if got := s.Stats().Rejected; got != int64(len(cases)) {
		t.Errorf("rejected counter %d, want %d", got, len(cases))
	}
}

// TestSchedulerWeightedFair pins smooth WRR: tenants weighted 3:1 with
// saturated queues are served in an interleaved 3:1 pattern, not in
// starvation blocks.
func TestSchedulerWeightedFair(t *testing.T) {
	sch := newScheduler(16, map[string]int{"heavy": 3, "light": 1})
	for i := 0; i < 8; i++ {
		if err := sch.submit(&job{tenant: "heavy", done: make(chan jobResult, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := sch.submit(&job{tenant: "light", done: make(chan jobResult, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 8; i++ {
		order = append(order, sch.next().tenant)
	}
	heavy := 0
	for _, tn := range order {
		if tn == "heavy" {
			heavy++
		}
	}
	if heavy != 6 {
		t.Errorf("first 8 picks served heavy %d times, want 6 (3:1): %v", heavy, order)
	}
	// The light tenant must appear within any window of 4 — no
	// starvation block.
	for i := 0; i+4 <= len(order); i++ {
		window := order[i : i+4]
		found := false
		for _, tn := range window {
			if tn == "light" {
				found = true
			}
		}
		if !found {
			t.Errorf("light tenant starved in window %v", window)
		}
	}
	sch.close()
	// Drain the rest; closed-and-empty returns nil.
	for sch.next() != nil {
	}
}

// TestSchedulerCloseDrains pins the shutdown contract: jobs accepted
// before close are still dispensed after it.
func TestSchedulerCloseDrains(t *testing.T) {
	sch := newScheduler(4, nil)
	for i := 0; i < 3; i++ {
		if err := sch.submit(&job{tenant: "t", done: make(chan jobResult, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	sch.close()
	if err := sch.submit(&job{tenant: "t", done: make(chan jobResult, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: want ErrClosed, got %v", err)
	}
	for i := 0; i < 3; i++ {
		if sch.next() == nil {
			t.Fatalf("job %d lost at shutdown", i)
		}
	}
	if sch.next() != nil {
		t.Fatal("drained scheduler dispensed a phantom job")
	}
}

// TestPoolQuarantineOnUnclean pins the health policy: an unclean
// release closes the network instead of recycling it.
func TestPoolQuarantineOnUnclean(t *testing.T) {
	p := NewPool(nil, 4, obs.NewRegistry())
	cfg := reliablesort.NetConfig{Dim: 2, RecvTimeout: time.Second}
	nw, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.(interface{ Release(bool) }).Release(false)
	if got := p.Stats(); got.Idle != 0 {
		t.Errorf("unclean release was pooled: %+v", got)
	}
	nw2, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw2.(interface{ Release(bool) }).Release(true)
	if got := p.Stats(); got.Idle != 1 {
		t.Errorf("clean release not pooled: %+v", got)
	}
	// Clean reuse path: next Get of the same geometry takes the warm one.
	nw3, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stats(); got.Reused != 1 {
		t.Errorf("warm network not reused: %+v", got)
	}
	nw3.(interface{ Release(bool) }).Release(true)
	p.Close()
	if got := p.Stats(); got.Idle != 0 {
		t.Errorf("Close left idle networks: %+v", got)
	}
}
