package recovery

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/obs"
)

// noSleep collects the waits the supervisor would have slept.
func noSleep(log *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *log = append(*log, d) }
}

func accuse(node int) []core.HostError {
	return []core.HostError{{
		Node: 0, Stage: 1, Iter: 0, Predicate: "consistency",
		Kind: core.KindValue, Accused: node, Detail: "copies differ",
	}}
}

func TestSuperviseFirstAttemptSuccess(t *testing.T) {
	var waits []time.Duration
	calls := 0
	rep, err := Supervise(3, func(p Plan) Outcome {
		calls++
		if p.Attempt != 0 || p.Dim != 3 || len(p.Physical) != 8 {
			t.Fatalf("plan = %+v", p)
		}
		for l, ph := range p.Physical {
			if l != ph {
				t.Fatalf("attempt 0 mapping not identity: %v", p.Physical)
			}
		}
		return Outcome{Cost: 100}
	}, Policy{Sleep: noSleep(&waits)})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(rep.Attempts) != 1 || !rep.Attempts[0].Verified {
		t.Fatalf("report = %+v", rep)
	}
	if rep.WastedCost != 0 || rep.TotalBackoff != 0 || len(waits) != 0 {
		t.Fatalf("clean run accrued overhead: %+v waits=%v", rep, waits)
	}
	if rep.FinalDim != 3 || len(rep.Quarantined) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSuperviseTransientRetries(t *testing.T) {
	var waits []time.Duration
	calls := 0
	rep, err := Supervise(3, func(p Plan) Outcome {
		calls++
		if p.Attempt == 0 {
			return Outcome{HostErrors: accuse(5), Cost: 70, Err: errors.New("fault detected")}
		}
		return Outcome{Cost: 80}
	}, Policy{Sleep: noSleep(&waits)})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || len(rep.Attempts) != 2 {
		t.Fatalf("calls=%d attempts=%d", calls, len(rep.Attempts))
	}
	if rep.WastedCost != 70 {
		t.Fatalf("WastedCost = %d", rep.WastedCost)
	}
	if len(waits) != 1 || waits[0] <= 0 {
		t.Fatalf("waits = %v", waits)
	}
	if rep.TotalBackoff != waits[0] {
		t.Fatalf("TotalBackoff = %v, slept %v", rep.TotalBackoff, waits)
	}
	a0 := rep.Attempts[0]
	if len(a0.Suspects) != 1 || a0.Suspects[0].Node != 5 || a0.Quarantined != NoNode {
		t.Fatalf("attempt 0 = %+v", a0)
	}
	// One transient accusation must not shrink the cube.
	if rep.FinalDim != 3 || len(rep.Quarantined) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestSuperviseObservability checks the metric family the supervisor
// feeds: a persistent fault supervised to a degraded verified result
// must account every attempt, retry, quarantine, wasted tick, and
// backoff wait.
func TestSuperviseObservability(t *testing.T) {
	o := obs.New(obs.NewRegistry(), 64)
	var waits []time.Duration
	_, err := Supervise(3, func(p Plan) Outcome {
		if p.Attempt < 2 {
			return Outcome{HostErrors: accuse(5), Cost: 70, Err: errors.New("fault detected")}
		}
		return Outcome{Cost: 80}
	}, Policy{Sleep: noSleep(&waits), Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	m := o.Metrics()
	if got := m.RecoveryAttempts.Value(); got != 3 {
		t.Errorf("attempts counter = %d, want 3", got)
	}
	if got := m.RecoveryRetries.Value(); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
	if got := m.RecoveryVerified.Value(); got != 1 {
		t.Errorf("verified counter = %d, want 1", got)
	}
	if got := m.RecoveryQuarantines.Value(); got != 1 {
		t.Errorf("quarantines counter = %d, want 1", got)
	}
	if got := m.RecoveryWastedVTicks.Value(); got != 140 {
		t.Errorf("wasted vticks counter = %d, want 140", got)
	}
	var total time.Duration
	for _, w := range waits {
		total += w
	}
	if got := m.RecoveryBackoffNanos.Value(); got != int64(total) {
		t.Errorf("backoff nanos counter = %d, slept %d", got, int64(total))
	}
	// 3 attempt begin/end pairs + 1 quarantine + 2 backoffs.
	if got := o.Journal().Total(); got != 9 {
		t.Errorf("journal events = %d, want 9", got)
	}
}

// A fault that follows physical node 5 across attempts is judged
// persistent after two identical accusations; the supervisor drops it,
// remaps onto a dim-2 subcube, and the degraded re-run succeeds.
func TestSupervisePersistentQuarantineAndShrink(t *testing.T) {
	var waits []time.Duration
	var plans []Plan
	rep, err := Supervise(3, func(p Plan) Outcome {
		plans = append(plans, p)
		for l, ph := range p.Physical {
			if ph == 5 {
				// The fault lives at physical node 5.
				return Outcome{HostErrors: accuse(l), Cost: 50, Err: errors.New("fault detected")}
			}
		}
		return Outcome{Cost: 60}
	}, Policy{Sleep: noSleep(&waits)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("attempts = %d, want 3 (fail, fail+quarantine, verified)", len(rep.Attempts))
	}
	if got := rep.Quarantined; len(got) != 1 || got[0] != 5 {
		t.Fatalf("Quarantined = %v", got)
	}
	if rep.Attempts[1].Quarantined != 5 {
		t.Fatalf("attempt 1 = %+v", rep.Attempts[1])
	}
	if rep.FinalDim != 2 {
		t.Fatalf("FinalDim = %d", rep.FinalDim)
	}
	last := plans[len(plans)-1]
	if last.Dim != 2 || len(last.Physical) != 4 {
		t.Fatalf("final plan = %+v", last)
	}
	// Node 5 has top bit 1 on a dim-3 cube, so the kept subcube is the
	// lower half: physical labels 0..3.
	for l, ph := range last.Physical {
		if ph != l {
			t.Fatalf("final mapping = %v", last.Physical)
		}
	}
	if rep.WastedCost != 100 {
		t.Fatalf("WastedCost = %d", rep.WastedCost)
	}
}

// A suspect in the lower half must leave the upper half's labels
// intact (relabeled by dropping the top axis bit).
func TestShrinkKeepsOppositeHalf(t *testing.T) {
	phys := []int{0, 1, 2, 3, 4, 5, 6, 7}
	got := shrink(phys, 2, 3) // suspect logical 2: top bit 0 → keep upper half
	want := []int{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("shrink = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shrink = %v, want %v", got, want)
		}
	}
}

func TestSuperviseExhaustion(t *testing.T) {
	var waits []time.Duration
	sentinel := errors.New("fault detected")
	_, err := Supervise(2, func(p Plan) Outcome {
		// Unattributable failure every time: nothing to quarantine.
		return Outcome{Cost: 10, Err: sentinel}
	}, Policy{MaxAttempts: 3, Sleep: noSleep(&waits)})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v", err)
	}
	if len(ex.Attempts) != 3 {
		t.Fatalf("history = %d attempts", len(ex.Attempts))
	}
	if !errors.Is(err, sentinel) {
		t.Fatal("ExhaustedError does not unwrap to the last attempt error")
	}
	if len(waits) != 2 {
		t.Fatalf("waits = %v", waits)
	}
}

// Alternating accusations (suspect changes every attempt) never reach
// the persistence streak, so the cube is never shrunk.
func TestSuperviseAlternatingSuspectsNeverQuarantines(t *testing.T) {
	var waits []time.Duration
	_, err := Supervise(3, func(p Plan) Outcome {
		return Outcome{HostErrors: accuse(p.Attempt % 2), Err: errors.New("fault detected")}
	}, Policy{MaxAttempts: 5, Sleep: noSleep(&waits)})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v", err)
	}
	if len(ex.Quarantined) != 0 {
		t.Fatalf("Quarantined = %v", ex.Quarantined)
	}
	for _, a := range ex.Attempts {
		if a.Dim != 3 {
			t.Fatalf("attempt %d ran at dim %d", a.Index, a.Dim)
		}
	}
}

func TestSuperviseRespectsMinDim(t *testing.T) {
	var waits []time.Duration
	_, err := Supervise(1, func(p Plan) Outcome {
		return Outcome{HostErrors: accuse(1), Err: errors.New("fault detected")}
	}, Policy{MaxAttempts: 4, Sleep: noSleep(&waits)})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v", err)
	}
	// Persistent at dim 1 == MinDim: nothing to shrink to, so the
	// supervisor retries until the budget runs out.
	if len(ex.Quarantined) != 0 {
		t.Fatalf("Quarantined = %v below MinDim", ex.Quarantined)
	}
	for _, a := range ex.Attempts {
		if a.Dim != 1 || len(a.Physical) != 2 {
			t.Fatalf("attempt = %+v", a)
		}
	}
}

func TestBackoffCappedExponentialWithJitter(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.5}.withDefaults()
	rng := rand.New(rand.NewSource(42))
	prevNominal := time.Duration(0)
	for retry := 1; retry <= 6; retry++ {
		nominal := b.Base << uint(retry-1)
		if nominal > b.Max {
			nominal = b.Max
		}
		w := b.wait(retry, rng)
		lo, hi := nominal/2, nominal
		if w < lo || w > hi {
			t.Fatalf("retry %d: wait %v outside [%v,%v]", retry, w, lo, hi)
		}
		if nominal < prevNominal {
			t.Fatalf("nominal shrank: %v after %v", nominal, prevNominal)
		}
		prevNominal = nominal
	}
}

func TestBackoffDeterministicBySeed(t *testing.T) {
	b := Backoff{}.withDefaults()
	a1 := b.wait(3, rand.New(rand.NewSource(7)))
	a2 := b.wait(3, rand.New(rand.NewSource(7)))
	if a1 != a2 {
		t.Fatalf("same seed, different waits: %v vs %v", a1, a2)
	}
}

func TestSuperviseRejectsBadInputs(t *testing.T) {
	if _, err := Supervise(3, nil, Policy{}); err == nil {
		t.Error("nil runner accepted")
	}
	if _, err := Supervise(-1, func(Plan) Outcome { return Outcome{} }, Policy{}); err == nil {
		t.Error("negative dim accepted")
	}
}

// Accusations naming labels outside the current cube (a Byzantine
// node can claim anything) are dropped during the logical→physical
// translation rather than panicking or polluting the history.
func TestPhysicalSuspectsDropsOutOfRange(t *testing.T) {
	ranked := []diagnose.Suspect{
		{Node: 99, DirectVotes: 3},
		{Node: 1, DirectVotes: 1},
		{Node: -2, DirectVotes: 1},
	}
	got := physicalSuspects(ranked, []int{0, 1, 2, 3})
	if len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("physicalSuspects = %+v", got)
	}
}

// A persistent fault with a spare pooled is repaired by substitution:
// the spare takes the suspect's logical slot, the dimension never
// drops, and the remaining pool rides the next plan.
func TestSuperviseSubstitutesSpareAtFullDim(t *testing.T) {
	var waits []time.Duration
	var plans []Plan
	rep, err := Supervise(3, func(p Plan) Outcome {
		plans = append(plans, p)
		for l, ph := range p.Physical {
			if ph == 5 {
				return Outcome{HostErrors: accuse(l), Cost: 50, Err: errors.New("fault detected")}
			}
		}
		return Outcome{Cost: 60}
	}, Policy{Spares: []int{8, 9}, Sleep: noSleep(&waits)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("attempts = %d, want 3 (fail, fail+substitute, verified)", len(rep.Attempts))
	}
	if got := rep.Quarantined; len(got) != 1 || got[0] != 5 {
		t.Fatalf("Quarantined = %v", got)
	}
	if len(rep.Substitutions) != 1 || rep.Substitutions[0] != (Substitution{Suspect: 5, Spare: 8, Attempt: 1}) {
		t.Fatalf("Substitutions = %+v", rep.Substitutions)
	}
	if rep.Attempts[1].Quarantined != 5 || rep.Attempts[1].Substituted != 8 {
		t.Fatalf("attempt 1 = %+v", rep.Attempts[1])
	}
	if rep.FinalDim != 3 {
		t.Fatalf("FinalDim = %d, substitution must preserve the dimension", rep.FinalDim)
	}
	last := plans[len(plans)-1]
	if last.Dim != 3 || len(last.Physical) != 8 {
		t.Fatalf("final plan = %+v", last)
	}
	if last.Physical[5] != 8 {
		t.Fatalf("spare 8 not at the suspect's slot: %v", last.Physical)
	}
	for l, ph := range last.Physical {
		if l != 5 && ph != l {
			t.Fatalf("substitution disturbed slot %d: %v", l, last.Physical)
		}
	}
	if len(last.Spares) != 1 || last.Spares[0] != 9 {
		t.Fatalf("remaining pool = %v, want [9]", last.Spares)
	}
}

// A fault that chases the logical slot (suspect, then its replacement
// spare, then the next) consumes the pool in order and only then falls
// back to the subcube shrink.
func TestSuperviseSparePoolConsumedInOrderThenShrinks(t *testing.T) {
	var waits []time.Duration
	rep, err := Supervise(3, func(p Plan) Outcome {
		if len(p.Physical) > 5 {
			// Whatever occupies logical slot 5 is faulty: the part is
			// fine, the socket is bad.
			return Outcome{HostErrors: accuse(5), Cost: 10, Err: errors.New("fault detected")}
		}
		return Outcome{Cost: 20}
	}, Policy{MaxAttempts: 8, Spares: []int{8, 9}, Sleep: noSleep(&waits)})
	if err != nil {
		t.Fatal(err)
	}
	wantQ := []int{5, 8, 9}
	if len(rep.Quarantined) != len(wantQ) {
		t.Fatalf("Quarantined = %v, want %v", rep.Quarantined, wantQ)
	}
	for i := range wantQ {
		if rep.Quarantined[i] != wantQ[i] {
			t.Fatalf("Quarantined = %v, want %v", rep.Quarantined, wantQ)
		}
	}
	if len(rep.Substitutions) != 2 ||
		rep.Substitutions[0].Spare != 8 || rep.Substitutions[1].Spare != 9 {
		t.Fatalf("Substitutions = %+v, want spares 8 then 9", rep.Substitutions)
	}
	if rep.Substitutions[0].Suspect != 5 || rep.Substitutions[1].Suspect != 8 {
		t.Fatalf("Substitutions = %+v, want suspects 5 then 8", rep.Substitutions)
	}
	// Two substitutions held dim 3; the third quarantine had a dry
	// pool and shrank.
	if rep.FinalDim != 2 {
		t.Fatalf("FinalDim = %d, want 2 after pool exhaustion", rep.FinalDim)
	}
	for _, a := range rep.Attempts {
		if a.Substituted != NoNode && a.Dim != 3 {
			t.Fatalf("substitution at dim %d: %+v", a.Dim, a)
		}
	}
}

// Substitution needs no smaller cube to fall back to, so it works even
// at the MinDim floor where a shrink would be refused.
func TestSuperviseSubstitutesAtMinDim(t *testing.T) {
	var waits []time.Duration
	rep, err := Supervise(1, func(p Plan) Outcome {
		for l, ph := range p.Physical {
			if ph == 1 {
				return Outcome{HostErrors: accuse(l), Cost: 5, Err: errors.New("fault detected")}
			}
		}
		return Outcome{Cost: 5}
	}, Policy{MaxAttempts: 5, Spares: []int{2}, Sleep: noSleep(&waits)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalDim != 1 {
		t.Fatalf("FinalDim = %d", rep.FinalDim)
	}
	if len(rep.Substitutions) != 1 || rep.Substitutions[0].Spare != 2 || rep.Substitutions[0].Suspect != 1 {
		t.Fatalf("Substitutions = %+v", rep.Substitutions)
	}
}

// With MinDim forced to 0 the cube may shrink to a single node, but
// never below: a persistent accusation against the last node must
// surface as a clean ExhaustedError, not a panic from a negative
// shrink axis.
func TestSuperviseDimZeroNeverShrinksBelow(t *testing.T) {
	var waits []time.Duration
	_, err := Supervise(1, func(p Plan) Outcome {
		// Always accuse logical node 0: after the 1→0 shrink the
		// accusation chases the sole survivor.
		return Outcome{HostErrors: accuse(0), Cost: 1, Err: errors.New("fault detected")}
	}, Policy{MaxAttempts: 6, MinDim: -1, Sleep: noSleep(&waits)})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v", err)
	}
	sawDimZero := false
	for _, a := range ex.Attempts {
		if a.Dim < 0 || len(a.Physical) != 1<<uint(a.Dim) {
			t.Fatalf("attempt = %+v", a)
		}
		if a.Dim == 0 {
			sawDimZero = true
			if a.Quarantined != NoNode {
				t.Fatalf("quarantine acted on a dim-0 cube: %+v", a)
			}
		}
	}
	if !sawDimZero {
		t.Fatal("supervision never reached dim 0")
	}
}

func TestSuperviseRejectsBadSparePools(t *testing.T) {
	runner := func(Plan) Outcome { return Outcome{} }
	if _, err := Supervise(3, runner, Policy{Spares: []int{3}}); err == nil {
		t.Error("spare label inside the cube accepted")
	}
	if _, err := Supervise(3, runner, Policy{Spares: []int{8, 8}}); err == nil {
		t.Error("duplicate spare labels accepted")
	}
	if _, err := Supervise(3, runner, Policy{Spares: []int{8, 9}}); err != nil {
		t.Errorf("valid pool rejected: %v", err)
	}
}
