package chaostest

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/reliablesort"
)

// TestConcurrentScrapesDuringChaos pins that the observability
// endpoints — /metrics, /debug/journal, and /debug/forensic — can be
// scraped concurrently while a supervised chaos run is actively
// appending to the metrics, the journal ring, and the flight recorder.
// Run under -race this is the data-race gate for the whole read path:
// registry snapshots, journal ring copies, and forensic ring snapshots
// all race against node goroutines mid-accusation.
func TestConcurrentScrapesDuringChaos(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.New(reg, 256)
	flight := forensic.New(0)

	mux := http.NewServeMux()
	obsH := obs.Handler(reg, o.Journal())
	mux.Handle("/metrics", obsH)
	mux.Handle("/debug/journal", obsH)
	mux.Handle("/debug/forensic", flight.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// The workload: persistent lying node under active supervision,
	// repeated so the scrapers overlap live protocol activity.
	sc := Scenario{
		Seed:        42,
		Dim:         3,
		BlockLen:    2,
		Strategy:    fault.KeyLie,
		Site:        5,
		Persistent:  true,
		Spares:      1,
		MaxAttempts: 6,
	}
	keys := Workload(sc)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rounds := 3
		if testing.Short() {
			rounds = 1
		}
		for i := 0; i < rounds; i++ {
			opts := reliablesort.Options{
				Dim:         sc.Dim,
				RecvTimeout: RecvTimeout(Simnet),
				AutoRecover: true,
				MaxAttempts: sc.MaxAttempts,
				Spares:      sc.Spares,
				Sleep:       func(time.Duration) {},
				Seed:        sc.Seed | 1,
				Inject:      ScenarioInjector(sc),
				Obs:         o,
				Flight:      flight,
			}
			if _, _, err := reliablesort.Sort(keys, opts); err != nil {
				t.Errorf("supervised run %d: %v", i, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	paths := []string{"/metrics", "/metrics?json=1", "/debug/journal",
		"/debug/forensic", "/debug/forensic?latest=1"}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, p := range paths {
					resp, err := http.Get(srv.URL + p)
					if err != nil {
						t.Errorf("GET %s: %v", p, err)
						return
					}
					// latest=1 404s until the first accusation lands.
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						t.Errorf("GET %s: status %d", p, resp.StatusCode)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	<-done
	wg.Wait()

	// The run was a persistent detected fault: the flight must hold the
	// accusations the scrapers were reading mid-run.
	if len(flight.Reports()) == 0 {
		t.Error("chaos run produced no forensic reports")
	}
	if o.Journal().Total() == 0 {
		t.Error("chaos run produced no journal events")
	}
}
