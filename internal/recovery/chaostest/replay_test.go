package chaostest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/simnet"
)

// replayCases are detected single-fault placements spanning three
// adversary classes, used to exercise the explorer→chaostest bridge.
func replayCases() []fault.Case {
	return []fault.Case{
		{Name: "msg/key-lie/n1/s1", Class: fault.ClassMessage,
			Msg:     &fault.Spec{Node: 1, Strategy: fault.KeyLie, ActivateStage: 1, LieValue: 1 << 20},
			Crashed: -1},
		{Name: "msg/split-lie/n2/s1", Class: fault.ClassMessage,
			Msg:     &fault.Spec{Node: 2, Strategy: fault.SplitLie, ActivateStage: 1, LieValue: 1 << 20},
			Crashed: -1},
		{Name: "mem/mem-stuck/n3", Class: fault.ClassMemory,
			Mem:     &fault.MemSpec{Node: 3, Mode: fault.MemStuck, Rate: 1, Seed: 42, ActivateStage: 1, StuckValue: -7},
			Crashed: -1},
	}
}

// TestExplorerScheduleReplaysThroughChaostest is the bridge property:
// recording a schedule in the explorer and replaying it through
// chaostest.ReplayCounterexample reproduces the identical diagnosis —
// same verdict, same accused node, same earliest-evidence (stage,
// iter), and same forensic first-divergence locator. The schedules are
// recorded under seeded random controlled scheduling so the host-merge
// races genuinely vary across seeds.
func TestExplorerScheduleReplaysThroughChaostest(t *testing.T) {
	for _, c := range replayCases() {
		for _, seed := range []int64{1, 1989} {
			sched, want, _, err := explore.Record(explore.Config{Dim: 2}, c, simnet.NewRandom(seed))
			if err != nil {
				t.Fatalf("%s seed %d: record: %v", c.Name, seed, err)
			}
			if want.Verdict != fault.Detected {
				t.Fatalf("%s seed %d: recorded verdict %v, case menu promises detection",
					c.Name, seed, want.Verdict)
			}
			rep := explore.Reproducer{Dim: 2, Case: c, Schedule: sched}
			got, _, err := ReplayCounterexample(rep)
			if err != nil {
				t.Fatalf("%s seed %d: replay: %v", c.Name, seed, err)
			}
			if got.Verdict != want.Verdict {
				t.Errorf("%s seed %d: verdict %v, recorded %v", c.Name, seed, got.Verdict, want.Verdict)
			}
			if got.Accused != want.Accused {
				t.Errorf("%s seed %d: accused %d, recorded %d", c.Name, seed, got.Accused, want.Accused)
			}
			if got.Stage != want.Stage || got.Iter != want.Iter {
				t.Errorf("%s seed %d: evidence at (%d,%d), recorded (%d,%d)",
					c.Name, seed, got.Stage, got.Iter, want.Stage, want.Iter)
			}
			if got.DivOK != want.DivOK || got.DivStage != want.DivStage || got.DivIter != want.DivIter {
				t.Errorf("%s seed %d: first divergence (%d,%d,%v), recorded (%d,%d,%v)",
					c.Name, seed, got.DivStage, got.DivIter, got.DivOK,
					want.DivStage, want.DivIter, want.DivOK)
			}
		}
	}
}

// TestReplayCounterexampleRejectsNonReproducing: an artifact whose
// schedule no longer breaks its recorded invariant is an error, not a
// silent pass.
func TestReplayCounterexampleRejectsNonReproducing(t *testing.T) {
	rep := explore.Reproducer{
		Dim:       1,
		Case:      fault.Case{Name: "none", Crashed: -1},
		Invariant: explore.InvVerifiedOrEscalated,
	}
	if _, _, err := ReplayCounterexample(rep); err == nil {
		t.Fatal("non-reproducing artifact replayed without error")
	}
}

// TestWriteCounterexample checks the artifact files land and parse.
func TestWriteCounterexample(t *testing.T) {
	dir := t.TempDir()
	c := replayCases()[0]
	sched, _, dump, err := explore.Record(explore.Config{Dim: 2}, c, simnet.NewRandom(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := explore.Reproducer{Dim: 2, Case: c, Schedule: sched}
	if err := WriteCounterexample(dir, "ce-test", rep, dump); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "ce-test.json"))
	if err != nil {
		t.Fatal(err)
	}
	back, err := explore.ParseReproducer(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Schedule) != len(sched) || back.Dim != 2 {
		t.Fatalf("artifact round-trip: %d directives dim %d, wrote %d dim 2", len(back.Schedule), back.Dim, len(sched))
	}
	if dump != nil {
		if _, err := os.Stat(filepath.Join(dir, "ce-test-forensic.json")); err != nil {
			t.Fatalf("forensic artifact: %v", err)
		}
	}
}
