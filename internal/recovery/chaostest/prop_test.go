package chaostest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/recovery"
)

// scriptedRunner fails, succeeds, and accuses at random (but
// deterministically per seed), modelling every behaviour a real
// attempt can exhibit: verified success, attributable failure
// (accusing a random logical node, sometimes consistently enough to
// trigger quarantine), and unattributable failure.
func scriptedRunner(rng *rand.Rand, failBias float64) recovery.Runner {
	var stickySuspect = -1
	return func(p recovery.Plan) recovery.Outcome {
		out := recovery.Outcome{Cost: 1 + rng.Int63n(5000)}
		if rng.Float64() >= failBias {
			return out // verified success
		}
		out.Err = fmt.Errorf("scripted failure at attempt %d", p.Attempt)
		switch rng.Intn(4) {
		case 0:
			// Unattributable failure: no evidence at all.
		case 1:
			// Fresh random accusation.
			out.HostErrors = accuseLogical(rng.Intn(len(p.Physical)))
		default:
			// Sticky accusation: the same logical slot accused again
			// and again, the pattern that trips PersistStreak.
			if stickySuspect < 0 || stickySuspect >= len(p.Physical) {
				stickySuspect = rng.Intn(len(p.Physical))
			}
			out.HostErrors = accuseLogical(stickySuspect)
		}
		return out
	}
}

// accuseLogical is one consistency accusation against a logical node,
// the evidence shape the diagnosis layer ranks highest.
func accuseLogical(node int) []core.HostError {
	return []core.HostError{{
		Node: 0, Stage: 1, Iter: 0, Predicate: "consistency",
		Kind: core.KindValue, Accused: node, Detail: "copies differ",
	}}
}

// TestReportSelfConsistencyProperty drives many random scripted
// supervisions straight into recovery.Supervise and asserts the
// Report/ExhaustedError bookkeeping is self-consistent in every one:
// attempts partition into retries + shrinks + substitutions +
// successes, wasted vticks equal the failed attempts' costs, backoff
// totals match the recorded waits, and the quarantine/substitution
// lists mirror the per-attempt records.
func TestReportSelfConsistencyProperty(t *testing.T) {
	const runs = 400
	rng := rand.New(rand.NewSource(19890612))
	for i := 0; i < runs; i++ {
		dim := 1 + rng.Intn(3)
		spares := spareLabels(dim, rng.Intn(4))
		pol := recovery.Policy{
			MaxAttempts: 1 + rng.Intn(8),
			MinDim:      1,
			Spares:      spares,
			Seed:        rng.Int63() | 1,
			Sleep:       func(time.Duration) {},
			Backoff:     recovery.Backoff{Base: time.Millisecond, Max: 16 * time.Millisecond},
		}
		failBias := 0.3 + rng.Float64()*0.6
		runSeed := rng.Int63()
		rep, err := recovery.Supervise(dim, scriptedRunner(rand.New(rand.NewSource(runSeed)), failBias), pol)
		if err != nil {
			var ex *recovery.ExhaustedError
			if !errors.As(err, &ex) {
				t.Fatalf("run %d (seed %d): unstructured error: %v", i, runSeed, err)
			}
			rep = &recovery.Report{
				Attempts:      ex.Attempts,
				FinalDim:      ex.Attempts[len(ex.Attempts)-1].Dim,
				Quarantined:   ex.Quarantined,
				Substitutions: ex.Substitutions,
			}
			for _, a := range ex.Attempts {
				rep.WastedCost += a.Cost
				rep.TotalBackoff += a.Backoff
			}
		}
		if err := VerifyReport(rep, nil); err != nil {
			t.Fatalf("run %d (seed %d, dim %d, spares %d): %v\nattempts: %+v",
				i, runSeed, dim, len(spares), err, rep.Attempts)
		}
		if len(rep.Attempts) > pol.MaxAttempts {
			t.Fatalf("run %d: %d attempts exceed budget %d", i, len(rep.Attempts), pol.MaxAttempts)
		}
		// The dimension floor holds in every trajectory.
		for _, a := range rep.Attempts {
			if a.Dim < pol.MinDim {
				t.Fatalf("run %d: attempt %d ran below MinDim: %d < %d", i, a.Index, a.Dim, pol.MinDim)
			}
		}
		// Spares are consumed at most once each, in pool order.
		next := 0
		for _, s := range rep.Substitutions {
			if next >= len(spares) || s.Spare != spares[next] {
				t.Fatalf("run %d: substitution %+v out of pool order %v", i, s, spares)
			}
			next++
		}
	}
}

// spareLabels mirrors reliablesort's pool construction for direct
// Supervise property runs.
func spareLabels(dim, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = 1<<uint(dim) + i
	}
	return out
}
