package chaostest

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/explore"
	"repro/internal/obs/forensic"
)

// ReplayCounterexample replays an interleaving-explorer reproducer
// (internal/explore) through the chaostest harness's artifact
// discipline: the recorded schedule is re-executed deterministically,
// the replay's diagnosis is returned for cross-checking against the
// explorer's own (same verdict, same accused node, same
// first-divergent (stage, iter)), and a replay that fails to break the
// invariant the artifact records is itself an error — a reproducer
// that does not reproduce is a determinism bug, the one thing a
// counterexample artifact must never be.
func ReplayCounterexample(r explore.Reproducer) (explore.Diagnosis, *forensic.Report, error) {
	diag, inv, dump, err := explore.Replay(r)
	if err != nil {
		return explore.Diagnosis{}, nil, fmt.Errorf("chaostest: replay: %w", err)
	}
	if inv != r.Invariant {
		return diag, dump, fmt.Errorf("chaostest: replay broke %q, artifact records %q", inv, r.Invariant)
	}
	return diag, dump, nil
}

// WriteCounterexample saves a reproducer (and, when present, the
// forensic dump of its replay) to dir under the given base name,
// following the CHAOS_ARTIFACT_DIR convention the chaos harness uses
// for its own failure reproducers: <base>.json is the ready-to-run
// artifact for ReplayCounterexample / cmd/explore -replay, and
// <base>-forensic.json renders with cmd/forensic.
func WriteCounterexample(dir, base string, r explore.Reproducer, dump *forensic.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("chaostest: artifact dir: %w", err)
	}
	buf, err := r.JSON()
	if err != nil {
		return fmt.Errorf("chaostest: reproducer render: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, base+".json"), buf, 0o644); err != nil {
		return fmt.Errorf("chaostest: reproducer write: %w", err)
	}
	if dump == nil {
		return nil
	}
	fbuf, err := dump.JSON()
	if err != nil {
		return fmt.Errorf("chaostest: forensic render: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, base+"-forensic.json"), fbuf, 0o644); err != nil {
		return fmt.Errorf("chaostest: forensic write: %w", err)
	}
	return nil
}
