package chaostest

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/reliablesort"
)

// seedMatrix returns the chaos seeds to run: CHAOS_SEEDS is a
// comma-separated list (the CI seed matrix); unset defaults to the
// paper's year.
func seedMatrix(t *testing.T) []int64 {
	raw := os.Getenv("CHAOS_SEEDS")
	if raw == "" {
		return []int64{1989}
	}
	var seeds []int64
	for _, f := range strings.Split(raw, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		s, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		t.Fatal("CHAOS_SEEDS set but empty")
	}
	return seeds
}

// failure is one scenario that violated an invariant.
type failure struct {
	sc  Scenario
	r   Result
	err error
}

// runMatrix supervises scenarios over the transport on a bounded
// worker pool. The pool — not t.Parallel — provides the concurrency:
// scenarios are timer-bound (silence faults ride out RecvTimeout), so
// overlapping them bounds wall time even on a single-CPU runner where
// -parallel defaults to 1.
func runMatrix(t *testing.T, scenarios []Scenario, tr Transport) {
	t.Helper()
	const workers = 8
	var (
		mu       sync.Mutex
		failures []failure
		wg       sync.WaitGroup
	)
	work := make(chan Scenario)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sc := range work {
				r := Run(sc, tr)
				if err := Check(sc, r); err != nil {
					mu.Lock()
					failures = append(failures, failure{sc: sc, r: r, err: err})
					mu.Unlock()
				}
			}
		}()
	}
	for _, sc := range scenarios {
		work <- sc
	}
	close(work)
	wg.Wait()

	if len(failures) == 0 {
		return
	}
	var b strings.Builder
	for _, f := range failures {
		fmt.Fprintf(&b, "%s/%s: %v\n", tr, f.sc.Name(), f.err)
	}
	writeReproducers(t, tr, &b)
	writeForensics(t, tr, failures)
	t.Errorf("%d of %d scenarios violated invariants:\n%s", len(failures), len(scenarios), b.String())
}

// writeReproducers saves the failing scenario names to
// $CHAOS_ARTIFACT_DIR so CI can upload them as a reproducer artifact.
func writeReproducers(t *testing.T, tr Transport, b *strings.Builder) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos artifact dir: %v", err)
		return
	}
	name := filepath.Join(dir, fmt.Sprintf("chaos-failures-%s-%d.txt", tr, time.Now().UnixNano()))
	if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
		t.Logf("chaos artifact write: %v", err)
		return
	}
	t.Logf("failure reproducers written to %s", name)
}

// writeForensics saves each failing scenario's forensic dumps (the
// accusation chains its flight recorder captured) next to the
// reproducer list, one JSON file per failure, so CI uploads the causal
// evidence alongside the scenario name. Renderable with cmd/forensic.
func writeForensics(t *testing.T, tr Transport, failures []failure) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos artifact dir: %v", err)
		return
	}
	for i, f := range failures {
		reports := f.r.Flight.Reports()
		if len(reports) == 0 {
			continue
		}
		var b strings.Builder
		b.WriteString("[\n")
		for j, rep := range reports {
			buf, err := rep.JSON()
			if err != nil {
				t.Logf("forensic render %s: %v", f.sc.Name(), err)
				continue
			}
			if j > 0 {
				b.WriteString(",\n")
			}
			b.Write(buf)
		}
		b.WriteString("\n]\n")
		name := filepath.Join(dir, fmt.Sprintf("forensic-%s-%d-%d.json", tr, time.Now().UnixNano(), i))
		if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
			t.Logf("forensic artifact write: %v", err)
			continue
		}
		t.Logf("forensic dump for %s written to %s", f.sc.Name(), name)
	}
}

// TestChaosMatrixSimnet is the main randomized battery: hundreds of
// deterministic scenarios over the in-process simulator.
func TestChaosMatrixSimnet(t *testing.T) {
	count := 160
	if testing.Short() {
		count = 24
	}
	for _, seed := range seedMatrix(t) {
		runMatrix(t, Generate(seed, count), Simnet)
	}
}

// TestChaosMatrixTCP runs a thinner slice of the same generator over
// real loopback sockets: same supervisor, same invariants, real
// transport.
func TestChaosMatrixTCP(t *testing.T) {
	count := 20
	if testing.Short() {
		count = 6
	}
	for _, seed := range seedMatrix(t) {
		runMatrix(t, Generate(seed^0x7cb, count), TCP)
	}
}

// TestSpareKeepsFullDimension is the directed acceptance check: a
// persistent single fault with one spare pooled recovers at full cube
// dimension on both transports.
func TestSpareKeepsFullDimension(t *testing.T) {
	for _, tr := range []Transport{Simnet, TCP} {
		sc := Scenario{
			Seed:        42,
			Dim:         3,
			BlockLen:    2,
			Strategy:    fault.KeyLie,
			Site:        5,
			Persistent:  true,
			Spares:      1,
			MaxAttempts: 6,
		}
		r := Run(sc, tr)
		if r.Err != nil {
			t.Fatalf("%v: %v", tr, r.Err)
		}
		if err := Check(sc, r); err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		rep := r.Stats.Recovery
		if rep.FinalDim != 3 || r.Stats.Nodes != 8 {
			t.Fatalf("%v: recovered at dim %d with %d nodes, want full dim 3 with 8", tr, rep.FinalDim, r.Stats.Nodes)
		}
		if len(rep.Quarantined) != 1 || rep.Quarantined[0] != 5 {
			t.Fatalf("%v: quarantined %v, want [5]", tr, rep.Quarantined)
		}
		if len(rep.Substitutions) != 1 || rep.Substitutions[0].Spare != 8 || rep.Substitutions[0].Suspect != 5 {
			t.Fatalf("%v: substitutions %v, want spare 8 at suspect 5", tr, rep.Substitutions)
		}
	}
}

// TestComparisonFaultQuarantinedAtSite is the directed acceptance
// check for the comparison class: a persistently lying comparator is
// localized exactly like a Byzantine message strategy, because the
// honest partner's protocol checks name the lying sender.
func TestComparisonFaultQuarantinedAtSite(t *testing.T) {
	sc := Scenario{
		Seed:        42,
		Dim:         3,
		BlockLen:    2,
		Class:       fault.ClassComparison,
		CmpMode:     fault.CmpPersistent,
		Rate:        1,
		Site:        5,
		Persistent:  true,
		Spares:      1,
		MaxAttempts: 6,
	}
	r := Run(sc, Simnet)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if err := Check(sc, r); err != nil {
		t.Fatal(err)
	}
	rep := r.Stats.Recovery
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != 5 {
		t.Fatalf("quarantined %v, want [5]", rep.Quarantined)
	}
	if rep.FinalDim != 3 {
		t.Fatalf("FinalDim = %d, spare should have preserved dim 3", rep.FinalDim)
	}
}

// TestMemoryFaultsNeverUnverified sweeps every memory mode through a
// persistent supervision at every site of a dim-2 cube: corrupted
// cells may propagate through honest nodes before a predicate fires
// (so localization is best-effort — Check tolerates a mislocalized
// quarantine for this class), but every run must still end in a
// verified sorted permutation or a structured escalation.
func TestMemoryFaultsNeverUnverified(t *testing.T) {
	for _, mode := range fault.AllMemModes() {
		for site := 0; site < 4; site++ {
			sc := Scenario{
				Seed:        1989 + int64(site),
				Dim:         2,
				BlockLen:    2,
				Class:       fault.ClassMemory,
				MemMode:     mode,
				Rate:        1,
				Site:        site,
				Persistent:  true,
				Spares:      1,
				MaxAttempts: 6,
			}
			if err := Check(sc, Run(sc, Simnet)); err != nil {
				t.Errorf("%s: %v", sc.Name(), err)
			}
		}
	}
}

// TestEmptyPoolMatchesShrinkPath pins the acceptance criterion that
// Spares: 0 is bit-identical to the pre-spares shrink path: the
// virtual-time series and attempt trajectory of a supervised run with
// an empty pool must exactly equal a second identical run (the path is
// deterministic) and must shrink the cube as the seed behavior did.
func TestEmptyPoolMatchesShrinkPath(t *testing.T) {
	run := func() ([]int64, reliablesort.Stats) {
		sc := Scenario{
			Seed:        7,
			Dim:         3,
			BlockLen:    2,
			Strategy:    fault.KeyLie,
			Site:        3,
			Persistent:  true,
			Spares:      0,
			MaxAttempts: 6,
		}
		r := Run(sc, Simnet)
		if r.Err != nil {
			t.Fatalf("run: %v", r.Err)
		}
		if err := Check(sc, r); err != nil {
			t.Fatalf("check: %v", err)
		}
		return r.Out, r.Stats
	}
	out1, st1 := run()
	out2, st2 := run()

	rep := st1.Recovery
	// Pre-PR shrink behavior: quarantine drops the suspect onto the
	// next-smaller subcube, no substitutions ever recorded.
	if rep.FinalDim != 2 || st1.Nodes != 4 {
		t.Fatalf("empty pool recovered at dim %d with %d nodes, want shrink to dim 2 with 4", rep.FinalDim, st1.Nodes)
	}
	if len(rep.Substitutions) != 0 {
		t.Fatalf("empty pool recorded substitutions %v", rep.Substitutions)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != 3 {
		t.Fatalf("quarantined %v, want [3]", rep.Quarantined)
	}
	for _, a := range rep.Attempts {
		if a.Substituted != recovery.NoNode {
			t.Fatalf("attempt %d recorded substitution %d with an empty pool", a.Index, a.Substituted)
		}
	}

	// Bit-identical determinism: same outputs, same virtual-time
	// series, same waits.
	if len(out1) != len(out2) {
		t.Fatalf("output lengths differ: %d vs %d", len(out1), len(out2))
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("outputs differ at %d: %d vs %d", i, out1[i], out2[i])
		}
	}
	r1, r2 := st1.Recovery, st2.Recovery
	if len(r1.Attempts) != len(r2.Attempts) {
		t.Fatalf("attempt counts differ: %d vs %d", len(r1.Attempts), len(r2.Attempts))
	}
	for i := range r1.Attempts {
		a, b := r1.Attempts[i], r2.Attempts[i]
		if a.Cost != b.Cost || a.Backoff != b.Backoff || a.Dim != b.Dim ||
			a.Quarantined != b.Quarantined || a.Substituted != b.Substituted {
			t.Fatalf("attempt %d diverged between identical runs:\n%+v\nvs\n%+v", i, a, b)
		}
	}
	if r1.WastedCost != r2.WastedCost || r1.TotalBackoff != r2.TotalBackoff || st1.Makespan != st2.Makespan {
		t.Fatalf("virtual-time accounting diverged: wasted %d/%d, backoff %v/%v, makespan %d/%d",
			r1.WastedCost, r2.WastedCost, r1.TotalBackoff, r2.TotalBackoff, st1.Makespan, st2.Makespan)
	}
}

// TestGenerateDeterministic pins that the scenario table is a pure
// function of its seed, which is what makes reproducer names
// meaningful.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(1989, 64)
	b := Generate(1989, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scenario %d differs across identical Generate calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Generate(1990, 64)
	same := 0
	for i := range c {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(c) {
		t.Fatal("different seeds produced an identical scenario table")
	}
	for i, sc := range a {
		if sc.Dim < 2 || sc.Dim > 3 {
			t.Fatalf("scenario %d dim %d outside [2,3]", i, sc.Dim)
		}
		if sc.Site < 0 || sc.Site >= 1<<uint(sc.Dim) {
			t.Fatalf("scenario %d site %d outside its dim-%d cube", i, sc.Site, sc.Dim)
		}
		if sc.Pad >= sc.BlockLen {
			t.Fatalf("scenario %d pad %d would drop a whole block (blockLen %d)", i, sc.Pad, sc.BlockLen)
		}
	}
}
