// Package chaostest is the randomized chaos/property harness for the
// recovery supervisor: it generates seeded scenarios over (fault
// strategy × fault site × transient/persistent × spare-pool size ×
// cube dimension), supervises each to completion over a chosen
// transport, and checks the recovery invariants the paper's
// application-oriented fault-tolerance argument rests on:
//
//   - the caller receives a verified sorted permutation of its input
//     or a structured *recovery.ExhaustedError — never an unverified
//     slice;
//   - the full cube dimension is preserved while the spare pool
//     lasts: a quarantine substitutes a spare at the suspect's slot,
//     and the subcube shrink happens only after pool exhaustion;
//   - the supervisor's Report bookkeeping is self-consistent: every
//     attempt is accounted exactly once, wasted virtual time is the
//     sum of the failed attempts' costs, and the virtual-time
//     accounting is monotone;
//   - transient faults are repaired by retry alone (no quarantine),
//     and persistent faults are localized to the injected site.
//
// Scenarios are deterministic functions of their seed, so any failure
// is reproducible from the one-line description the tests emit (and
// write to CHAOS_ARTIFACT_DIR when set, for CI artifact upload).
package chaostest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/blocksort"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/recovery"
	"repro/internal/reliablesort"
	"repro/internal/tcpnet"
	"repro/internal/transport"
)

// Transport selects the network implementation a scenario runs over.
type Transport int

const (
	// Simnet runs the scenario over the in-process simulator.
	Simnet Transport = iota
	// TCP runs the scenario over real loopback sockets
	// (internal/tcpnet), including spare pre-registration.
	TCP
)

// String returns the transport's name.
func (tr Transport) String() string {
	if tr == TCP {
		return "tcpnet"
	}
	return "simnet"
}

// Scenario is one randomized supervision: an adversary at a physical
// fault site, transient or persistent, with a spare pool, on a cube of
// the given dimension. The adversary is drawn from the full taxonomy
// (DESIGN.md §7): a Byzantine message strategy, a lying comparator, or
// corrupting memory cells.
type Scenario struct {
	// Seed derives the workload and the supervisor's jitter stream.
	Seed int64
	// Dim is the cube dimension (≥ 2 so ActivateStage 1 exists).
	Dim int
	// BlockLen scales the per-node workload; the key count is chosen
	// so padding is sometimes exercised.
	BlockLen int
	// Class is the adversary class. The zero value and ClassMessage /
	// ClassAbsence inject Strategy; ClassComparison injects a CmpMode
	// comparator and ClassMemory a MemMode corruptor, both at Rate.
	Class fault.Class
	// Strategy is the injected Byzantine behaviour for the message
	// and absence classes.
	Strategy fault.Strategy
	// CmpMode is the lying-comparator discipline (ClassComparison).
	CmpMode fault.CmpMode
	// MemMode is the memory-corruption discipline (ClassMemory).
	MemMode fault.MemMode
	// Rate is the comparison-lie / memory-corruption rate.
	Rate float64
	// Site is the physical label of the fault site, in [0, 2^Dim).
	Site int
	// Persistent makes the fault manifest on every attempt for as
	// long as the site is mapped into the cube; otherwise it fires on
	// attempt 0 only.
	Persistent bool
	// Spares is the spare-pool size handed to the supervisor.
	Spares int
	// MaxAttempts is the supervisor's attempt budget.
	MaxAttempts int
	// Pad is how many keys short of a full 2^Dim × BlockLen geometry
	// the workload runs, exercising the sentinel padding path.
	Pad int
}

// Name returns a stable reproducer label for test output and artifact
// files.
func (sc Scenario) Name() string {
	kind := "transient"
	if sc.Persistent {
		kind = "persistent"
	}
	return fmt.Sprintf("seed%d/d%d/m%d/%s/site%d/%s/spares%d", sc.Seed, sc.Dim, sc.BlockLen,
		sc.faultLabel(), sc.Site, kind, sc.Spares)
}

// faultLabel names the scenario's adversary: the message strategy, or
// the comparison/memory mode with its rate.
func (sc Scenario) faultLabel() string {
	switch sc.Class {
	case fault.ClassComparison:
		return fmt.Sprintf("%v@%.2g", sc.CmpMode, sc.Rate)
	case fault.ClassMemory:
		return fmt.Sprintf("%v@%.2g", sc.MemMode, sc.Rate)
	default:
		return sc.Strategy.String()
	}
}

// Generate derives n deterministic scenarios from seed. The same
// (seed, n) always yields the same table, so a failing scenario can be
// re-run by name.
func Generate(seed int64, n int) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	sts := fault.AllStrategies()
	cms := fault.AllCmpModes()
	mms := fault.AllMemModes()
	out := make([]Scenario, n)
	for i := range out {
		dim := 2 + rng.Intn(2) // 2 or 3: ActivateStage 1 must exist
		blockLen := 1 + rng.Intn(3)
		out[i] = Scenario{
			Seed:        rng.Int63(),
			Dim:         dim,
			BlockLen:    blockLen,
			Site:        rng.Intn(1 << uint(dim)),
			Persistent:  rng.Intn(2) == 1,
			Spares:      rng.Intn(3),
			MaxAttempts: 5 + rng.Intn(2),
			Pad:         rng.Intn(blockLen),
		}
		// Draw the adversary uniformly over the whole taxonomy: every
		// message strategy, comparison mode, and memory mode. Rate 1
		// keeps comparison/memory faults deterministic enough that a
		// persistent fault manifests on every attempt.
		pick := rng.Intn(len(sts) + len(cms) + len(mms))
		switch {
		case pick < len(sts):
			out[i].Strategy = sts[pick]
			out[i].Class = out[i].Strategy.Class()
		case pick < len(sts)+len(cms):
			out[i].Class = fault.ClassComparison
			out[i].CmpMode = cms[pick-len(sts)]
			out[i].Rate = 1
		default:
			out[i].Class = fault.ClassMemory
			out[i].MemMode = mms[pick-len(sts)-len(cms)]
			out[i].Rate = 1
		}
	}
	return out
}

// Workload returns the scenario's deterministic key slice.
func Workload(sc Scenario) []int64 {
	rng := rand.New(rand.NewSource(sc.Seed))
	n := (1<<uint(sc.Dim))*sc.BlockLen - sc.Pad
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(4000) - 2000
	}
	return keys
}

// Injector places the scenario's Byzantine processor at its physical
// fault site, following the site through quarantine remaps exactly as
// an operator-visible hardware fault would: once the site is dropped
// (substituted or shrunk away) the injector finds no logical slot for
// it and subsequent attempts run clean.
func Injector(st fault.Strategy, site int, persistent bool) func(attempt, dim int, physical []int) []blocksort.Options {
	return func(attempt, dim int, physical []int) []blocksort.Options {
		opts := make([]blocksort.Options, 1<<uint(dim))
		if !persistent && attempt > 0 {
			return opts
		}
		for l, ph := range physical {
			if ph == site {
				spec := fault.Spec{Node: l, Strategy: st, ActivateStage: 1, LieValue: 7777}
				opts[l] = blocksort.Options{SkipChecks: true, Tamper: spec.Tamper()}
				break
			}
		}
		return opts
	}
}

// ScenarioInjector builds the scenario's per-attempt injection across
// the whole adversary taxonomy: message/absence scenarios delegate to
// Injector, comparison and memory scenarios arm the faulty node's
// Compare / CorruptMemory hooks instead of tampering messages. Like
// Injector, the fault follows the physical site through remaps, and a
// fresh comparator/corruptor is built per attempt so its deterministic
// random stream restarts with the retried sort.
func ScenarioInjector(sc Scenario) func(attempt, dim int, physical []int) []blocksort.Options {
	switch sc.Class {
	case fault.ClassComparison, fault.ClassMemory:
	default:
		return Injector(sc.Strategy, sc.Site, sc.Persistent)
	}
	return func(attempt, dim int, physical []int) []blocksort.Options {
		opts := make([]blocksort.Options, 1<<uint(dim))
		if !sc.Persistent && attempt > 0 {
			return opts
		}
		for l, ph := range physical {
			if ph != sc.Site {
				continue
			}
			if sc.Class == fault.ClassComparison {
				spec := fault.CmpSpec{Node: l, Mode: sc.CmpMode, Rate: sc.Rate,
					Seed: sc.Seed ^ 0x5eed, ActivateStage: 1}
				opts[l] = blocksort.Options{SkipChecks: true, Compare: spec.Comparator()}
			} else {
				spec := fault.MemSpec{Node: l, Mode: sc.MemMode, Rate: sc.Rate,
					Seed: sc.Seed ^ 0x5eed, ActivateStage: 1, StuckValue: 7777}
				opts[l] = blocksort.Options{SkipChecks: true, CorruptMemory: spec.Corruptor()}
			}
			break
		}
		return opts
	}
}

// RateConfig parameterizes a RateInjector: a memoryless fault-arrival
// process in the MTTF framing of the recovery-aware cost model
// (internal/costmodel.FaultRegime), rather than the single scripted
// fault of a Scenario.
type RateConfig struct {
	// MTTF is the per-node mean virtual time between fault arrivals,
	// in vticks. The probability that some fault arrives during an
	// attempt of T ticks on n nodes is 1 − exp(−n·T/MTTF).
	MTTF float64
	// Baselines maps cube dimension → fault-free attempt vticks for
	// the workload under test; the injector prices each attempt's
	// exposure window with the same numbers the cost model uses, so
	// measured and modeled arrival rates agree exactly.
	Baselines map[int]float64
	// PersistentFrac is the probability an arrival is persistent: it
	// re-manifests at its site every attempt until the site is
	// quarantined out of the cube.
	PersistentFrac float64
	// Strategies is the Byzantine behaviour pool, drawn uniformly per
	// arrival. Calibration sweeps restrict it to strongly attributed
	// strategies so the supervisor's suspect ranking names the
	// injected site.
	Strategies []fault.Strategy
	// Seed drives the injector's private arrival/site/strategy stream.
	Seed int64
}

// RateInjector drives a rate-based fault process through
// reliablesort.Options.Inject. It is stateful: a persistent arrival
// follows its physical site through remaps until quarantined, and at
// most one fault is active at a time (the single-fault regime of the
// paper's Theorem 3, which both the detection guarantee and the cost
// model's recursion assume).
type RateInjector struct {
	cfg RateConfig
	rng *rand.Rand

	// activeSite/activeStrategy describe the live persistent fault;
	// activeSite < 0 means none.
	activeSite     int
	activeStrategy fault.Strategy
	// lastSite is the most recently manifested site. New arrivals
	// avoid it so a transient episode and an unrelated follow-up at
	// the same site cannot masquerade as a persistent streak — real
	// independent arrivals on distinct parts, which is also exactly
	// what the cost model's state machine prices.
	lastSite int

	// Manifestations counts attempts in which a fault was active —
	// the denominator of the measured detection fraction.
	Manifestations int64
	// Arrivals counts fresh fault arrivals (first manifestations).
	Arrivals int64
}

// NewRateInjector returns a rate injector for one supervision. Each
// supervised run needs its own injector (state follows the attempt
// sequence).
func NewRateInjector(cfg RateConfig) *RateInjector {
	return &RateInjector{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		activeSite: -1,
		lastSite:   -1,
	}
}

// Inject implements reliablesort.Options.Inject for the rate process.
func (ri *RateInjector) Inject(attempt, dim int, physical []int) []blocksort.Options {
	opts := make([]blocksort.Options, 1<<uint(dim))
	// A live persistent fault re-manifests while its site is mapped;
	// once quarantine removed the site, the episode is over.
	if ri.activeSite >= 0 {
		for l, ph := range physical {
			if ph == ri.activeSite {
				ri.manifest(opts, l, ri.activeStrategy)
				ri.lastSite = ri.activeSite
				return opts
			}
		}
		ri.activeSite = -1
	}
	t, ok := ri.cfg.Baselines[dim]
	if !ok || ri.cfg.MTTF <= 0 || len(ri.cfg.Strategies) == 0 {
		return opts
	}
	p := 1 - math.Exp(-float64(int64(1)<<uint(dim))*t/ri.cfg.MTTF)
	if ri.rng.Float64() >= p {
		return opts
	}
	// Fresh arrival: uniform over mapped sites, avoiding the most
	// recently manifested one.
	site := ri.pickSite(physical)
	if site < 0 {
		return opts
	}
	st := ri.cfg.Strategies[ri.rng.Intn(len(ri.cfg.Strategies))]
	if ri.rng.Float64() < ri.cfg.PersistentFrac {
		ri.activeSite, ri.activeStrategy = site, st
	}
	ri.Arrivals++
	for l, ph := range physical {
		if ph == site {
			ri.manifest(opts, l, st)
			break
		}
	}
	ri.lastSite = site
	return opts
}

func (ri *RateInjector) manifest(opts []blocksort.Options, logical int, st fault.Strategy) {
	spec := fault.Spec{Node: logical, Strategy: st, ActivateStage: 1, LieValue: 7777}
	opts[logical] = blocksort.Options{SkipChecks: true, Tamper: spec.Tamper()}
	ri.Manifestations++
}

func (ri *RateInjector) pickSite(physical []int) int {
	candidates := make([]int, 0, len(physical))
	for _, ph := range physical {
		if ph != ri.lastSite {
			candidates = append(candidates, ph)
		}
	}
	if len(candidates) == 0 {
		candidates = physical
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[ri.rng.Intn(len(candidates))]
}

// Result is everything one supervised scenario produced.
type Result struct {
	In    []int64
	Out   []int64
	Stats reliablesort.Stats
	Err   error
	// Obs is the run's private observer; its recovery counters are
	// cross-checked against the supervisor's Report by Check.
	Obs *obs.Observer
	// Flight is the run's causal flight recorder; its forensic dumps
	// are written next to the failure reproducers on invariant
	// violations.
	Flight *forensic.Flight
}

// RecvTimeout returns the absence-detection timeout used for the
// transport: long enough that honest partners are never misdiagnosed,
// short enough that silence strategies don't dominate wall time.
func RecvTimeout(tr Transport) time.Duration {
	if tr == TCP {
		return 400 * time.Millisecond
	}
	return 80 * time.Millisecond
}

// TCPNetwork is the reliablesort transport constructor for tcpnet,
// spares pre-registered as real idle loopback connections.
func TCPNetwork(cfg reliablesort.NetConfig) (transport.Network, error) {
	return tcpnet.New(tcpnet.Config{
		Dim:         cfg.Dim,
		Spares:      cfg.Spares,
		RecvTimeout: cfg.RecvTimeout,
		Obs:         cfg.Obs,
		Flight:      cfg.Flight,
	})
}

// Run supervises the scenario to completion over the transport. Every
// run gets a private observer so the supervisor's telemetry counters
// can be cross-checked against its Report without interference from
// concurrent scenarios.
func Run(sc Scenario, tr Transport) Result {
	keys := Workload(sc)
	o := obs.New(obs.NewRegistry(), 256)
	flight := forensic.New(0)
	opts := reliablesort.Options{
		Dim:         sc.Dim,
		RecvTimeout: RecvTimeout(tr),
		AutoRecover: true,
		MaxAttempts: sc.MaxAttempts,
		Spares:      sc.Spares,
		Sleep:       func(time.Duration) {},
		Seed:        sc.Seed | 1,
		Inject:      ScenarioInjector(sc),
		Obs:         o,
		Flight:      flight,
	}
	if tr == TCP {
		opts.NewNetwork = TCPNetwork
	}
	out, stats, err := reliablesort.Sort(keys, opts)
	return Result{In: keys, Out: out, Stats: stats, Err: err, Obs: o, Flight: flight}
}

// Check runs the full invariant battery against a scenario's result.
// It returns nil when every invariant holds.
func Check(sc Scenario, r Result) error {
	if r.Err != nil {
		// The only acceptable failure is a structured escalation
		// carrying the complete, self-consistent attempt history.
		var ex *recovery.ExhaustedError
		if !errors.As(r.Err, &ex) {
			return fmt.Errorf("unstructured error: %w", r.Err)
		}
		if len(ex.Attempts) != sc.MaxAttempts {
			return fmt.Errorf("ExhaustedError with %d attempts, budget was %d", len(ex.Attempts), sc.MaxAttempts)
		}
		rep := &recovery.Report{
			Attempts:      ex.Attempts,
			FinalDim:      ex.Attempts[len(ex.Attempts)-1].Dim,
			Quarantined:   ex.Quarantined,
			Substitutions: ex.Substitutions,
		}
		for _, a := range ex.Attempts {
			rep.WastedCost += a.Cost
			rep.TotalBackoff += a.Backoff
		}
		if err := VerifyReport(rep, r.Obs.Metrics()); err != nil {
			return err
		}
		return checkAttemptHistory(sc, rep)
	}

	if err := checkSorted(r.In, r.Out); err != nil {
		return err
	}
	rep := r.Stats.Recovery
	if rep == nil {
		return errors.New("AutoRecover success without recovery report")
	}
	if err := VerifyReport(rep, r.Obs.Metrics()); err != nil {
		return err
	}
	if err := checkAttemptHistory(sc, rep); err != nil {
		return err
	}

	quarantined := rep.Quarantined
	if !sc.Persistent {
		// A transient fault must be repaired by retry alone.
		if len(quarantined) != 0 {
			return fmt.Errorf("transient fault quarantined %v", quarantined)
		}
		if r.Stats.Attempts > 2 {
			return fmt.Errorf("transient fault took %d attempts", r.Stats.Attempts)
		}
		return nil
	}
	// Persistent fault, recovered: it must have been localized to the
	// injected site — except for the memory class, where corrupted
	// cells travel through honest nodes as legitimate-looking keys
	// before a predicate fires, so the first quarantine may name a
	// downstream victim. Detection (the run ended verified or
	// escalated, never silently wrong) is guaranteed for every class;
	// localization is only best-effort for memory faults.
	if len(quarantined) > 0 && quarantined[0] != sc.Site && sc.Class != fault.ClassMemory {
		return fmt.Errorf("first quarantine hit %d, fault site was %d", quarantined[0], sc.Site)
	}
	// …and while quarantines fit the spare pool, repaired at full
	// dimension (a mislocalized memory fault can quarantine twice and
	// legitimately outrun the pool).
	if sc.Spares >= 1 && len(quarantined) > 0 && len(quarantined) <= sc.Spares {
		if rep.FinalDim != sc.Dim {
			return fmt.Errorf("spares available but FinalDim = %d (started %d)", rep.FinalDim, sc.Dim)
		}
		if len(rep.Substitutions) == 0 {
			return errors.New("spares available but quarantine recorded no substitution")
		}
		if r.Stats.Nodes != 1<<uint(sc.Dim) {
			return fmt.Errorf("degraded geometry %d nodes despite spare substitution", r.Stats.Nodes)
		}
	}
	if sc.Spares == 0 && len(rep.Substitutions) != 0 {
		return fmt.Errorf("empty pool produced substitutions %v", rep.Substitutions)
	}
	return nil
}

// checkSorted asserts out is an ascending permutation of in.
func checkSorted(in, out []int64) error {
	if len(out) != len(in) {
		return fmt.Errorf("result length %d, want %d", len(out), len(in))
	}
	counts := make(map[int64]int, len(in))
	for _, k := range in {
		counts[k]++
	}
	for i, k := range out {
		if i > 0 && out[i-1] > k {
			return fmt.Errorf("result unsorted at %d: %d > %d", i, out[i-1], k)
		}
		counts[k]--
		if counts[k] < 0 {
			return fmt.Errorf("result key %d not a permutation of the input (extra %d)", i, k)
		}
	}
	for k, c := range counts {
		if c != 0 {
			return fmt.Errorf("result lost %d copies of key %d", c, k)
		}
	}
	return nil
}

// checkAttemptHistory asserts the dimension/spare trajectory of the
// attempt history: full dimension preserved while spares remain,
// shrink only after pool exhaustion, spare labels consumed in order,
// and per-attempt virtual costs positive (the monotone virtual-time
// series).
func checkAttemptHistory(sc Scenario, rep *recovery.Report) error {
	wantDim := sc.Dim
	sparesUsed := 0
	spareBase := 1 << uint(sc.Dim)
	for i, a := range rep.Attempts {
		if a.Dim != wantDim {
			return fmt.Errorf("attempt %d ran at dim %d, want %d", i, a.Dim, wantDim)
		}
		if a.Cost <= 0 {
			return fmt.Errorf("attempt %d cost %d vticks; every attempt charges virtual time", i, a.Cost)
		}
		switch {
		case a.Substituted != recovery.NoNode:
			if a.Quarantined == recovery.NoNode {
				return fmt.Errorf("attempt %d substituted %d without a quarantine", i, a.Substituted)
			}
			if sparesUsed >= sc.Spares {
				return fmt.Errorf("attempt %d substituted beyond the %d-spare pool", i, sc.Spares)
			}
			if want := spareBase + sparesUsed; a.Substituted != want {
				return fmt.Errorf("attempt %d activated spare %d, want %d (in-order consumption)", i, a.Substituted, want)
			}
			sparesUsed++
		case a.Quarantined != recovery.NoNode:
			// A shrink: legal only once the pool is dry.
			if sparesUsed < sc.Spares {
				return fmt.Errorf("attempt %d shrank the cube with %d spares still pooled", i, sc.Spares-sparesUsed)
			}
			wantDim--
		}
	}
	if rep.FinalDim != wantDim {
		// FinalDim is the dimension of the last attempt actually run,
		// so a budget-exhausted run whose final act was a
		// shrink-quarantine legally sits one dimension above the
		// trajectory endpoint: the shrunk cube never got an attempt.
		last := rep.Attempts[len(rep.Attempts)-1]
		trailingShrink := !last.Verified && last.Quarantined != recovery.NoNode &&
			last.Substituted == recovery.NoNode
		if !(trailingShrink && rep.FinalDim == wantDim+1 && rep.FinalDim == last.Dim) {
			return fmt.Errorf("FinalDim = %d, trajectory says %d", rep.FinalDim, wantDim)
		}
	}
	return nil
}

// VerifyReport checks the supervisor's bookkeeping for internal
// self-consistency, independent of any scenario:
//
//   - attempts partition exactly into retries + shrink-quarantines +
//     substitutions + verified successes;
//   - the verified attempt, if any, is unique and last;
//   - WastedCost equals the sum of the failed attempts' costs and
//     TotalBackoff the sum of the per-attempt waits;
//   - Quarantined and Substitutions mirror the per-attempt records in
//     order;
//   - each attempt's logical→physical map is a well-formed injective
//     relabeling that reflects the previous attempt's repair.
//
// When m is non-nil it must be the run's private metrics bundle; the
// report is additionally cross-checked against the observability
// series the supervisor emitted — TotalBackoff against the backoff
// counter, WastedCost against the wasted-vticks counter, and the
// attempt/quarantine/substitution counts against theirs — so a drift
// between the Report and the obs layer fails every chaos run.
func VerifyReport(rep *recovery.Report, m *obs.Metrics) error {
	var wasted int64
	var backoff time.Duration
	var quarantined []int
	var subs []recovery.Substitution
	retries, shrinks, substitutions, successes := 0, 0, 0, 0
	for i, a := range rep.Attempts {
		if a.Index != i {
			return fmt.Errorf("attempt %d records index %d", i, a.Index)
		}
		if len(a.Physical) != 1<<uint(a.Dim) {
			return fmt.Errorf("attempt %d: %d physical labels for dim %d", i, len(a.Physical), a.Dim)
		}
		seen := make(map[int]bool, len(a.Physical))
		for _, ph := range a.Physical {
			if seen[ph] {
				return fmt.Errorf("attempt %d: physical label %d mapped twice", i, ph)
			}
			seen[ph] = true
		}
		if i == 0 && a.Backoff != 0 {
			return fmt.Errorf("first attempt waited %v", a.Backoff)
		}
		backoff += a.Backoff
		if a.Verified {
			if a.Err != nil {
				return fmt.Errorf("attempt %d verified with error %v", i, a.Err)
			}
			if i != len(rep.Attempts)-1 {
				return fmt.Errorf("verified attempt %d is not last of %d", i, len(rep.Attempts))
			}
			successes++
			continue
		}
		if a.Err == nil {
			return fmt.Errorf("attempt %d failed with nil error", i)
		}
		wasted += a.Cost
		switch {
		case a.Substituted != recovery.NoNode:
			substitutions++
			quarantined = append(quarantined, a.Quarantined)
			subs = append(subs, recovery.Substitution{Suspect: a.Quarantined, Spare: a.Substituted, Attempt: i})
		case a.Quarantined != recovery.NoNode:
			shrinks++
			quarantined = append(quarantined, a.Quarantined)
		default:
			retries++
		}
	}
	if total := retries + shrinks + substitutions + successes; total != len(rep.Attempts) {
		return fmt.Errorf("classification covers %d of %d attempts", total, len(rep.Attempts))
	}
	if wasted != rep.WastedCost {
		return fmt.Errorf("WastedCost = %d, per-attempt failed costs sum to %d", rep.WastedCost, wasted)
	}
	if backoff != rep.TotalBackoff {
		return fmt.Errorf("TotalBackoff = %v, per-attempt waits sum to %v", rep.TotalBackoff, backoff)
	}
	if len(quarantined) != len(rep.Quarantined) {
		return fmt.Errorf("Quarantined = %v, attempts record %v", rep.Quarantined, quarantined)
	}
	for i := range quarantined {
		if quarantined[i] != rep.Quarantined[i] {
			return fmt.Errorf("Quarantined = %v, attempts record %v", rep.Quarantined, quarantined)
		}
	}
	if len(subs) != len(rep.Substitutions) {
		return fmt.Errorf("Substitutions = %v, attempts record %v", rep.Substitutions, subs)
	}
	for i := range subs {
		if subs[i] != rep.Substitutions[i] {
			return fmt.Errorf("Substitutions = %v, attempts record %v", rep.Substitutions, subs)
		}
	}
	if len(rep.Substitutions) > len(rep.Quarantined) {
		return fmt.Errorf("%d substitutions exceed %d quarantines", len(rep.Substitutions), len(rep.Quarantined))
	}
	if n := len(rep.Attempts); n > 0 && rep.FinalDim != rep.Attempts[n-1].Dim {
		return fmt.Errorf("FinalDim = %d, last attempt ran at %d", rep.FinalDim, rep.Attempts[n-1].Dim)
	}
	if m != nil {
		verified := int64(0)
		if n := len(rep.Attempts); n > 0 && rep.Attempts[n-1].Verified {
			verified = 1
		}
		checks := []struct {
			name string
			got  int64
			want int64
		}{
			{"recovery_attempts_total", m.RecoveryAttempts.Value(), int64(len(rep.Attempts))},
			{"recovery_retries_total", m.RecoveryRetries.Value(), int64(max(0, len(rep.Attempts)-1))},
			{"recovery_verified_total", m.RecoveryVerified.Value(), verified},
			{"recovery_quarantines_total", m.RecoveryQuarantines.Value(), int64(len(rep.Quarantined))},
			{"recovery_substitutions_total", m.RecoverySubstitutions.Value(), int64(len(rep.Substitutions))},
			{"recovery_wasted_vticks_total", m.RecoveryWastedVTicks.Value(), rep.WastedCost},
			{"recovery_backoff_nanos_total", m.RecoveryBackoffNanos.Value(), int64(rep.TotalBackoff)},
		}
		for _, c := range checks {
			if c.got != c.want {
				return fmt.Errorf("obs %s = %d, report says %d", c.name, c.got, c.want)
			}
		}
	}
	// Dimension/mapping trajectory: each repair is reflected in the
	// next attempt's plan.
	for i := 1; i < len(rep.Attempts); i++ {
		prev, cur := rep.Attempts[i-1], rep.Attempts[i]
		switch {
		case prev.Substituted != recovery.NoNode:
			if cur.Dim != prev.Dim {
				return fmt.Errorf("attempt %d: substitution changed dim %d → %d", i, prev.Dim, cur.Dim)
			}
			if !contains(cur.Physical, prev.Substituted) || contains(cur.Physical, prev.Quarantined) {
				return fmt.Errorf("attempt %d map %v does not reflect substitution %d→%d",
					i, cur.Physical, prev.Quarantined, prev.Substituted)
			}
		case prev.Quarantined != recovery.NoNode:
			if cur.Dim != prev.Dim-1 {
				return fmt.Errorf("attempt %d: shrink changed dim %d → %d", i, prev.Dim, cur.Dim)
			}
			if contains(cur.Physical, prev.Quarantined) {
				return fmt.Errorf("attempt %d map %v retains quarantined node %d", i, cur.Physical, prev.Quarantined)
			}
		default:
			if cur.Dim != prev.Dim {
				return fmt.Errorf("attempt %d: retry changed dim %d → %d", i, prev.Dim, cur.Dim)
			}
		}
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
