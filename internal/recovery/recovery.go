// Package recovery closes the loop the paper leaves open. Theorem 3
// guarantees the sort fail-stops on any single fault and Section 1
// promises only that "reliable communication of this diagnostic
// information is provided to the system so that appropriate actions
// may be taken" — this package takes those actions. A Supervisor
// drives repeated sort attempts to a verified result:
//
//	detect ──► diagnose ──► transient? ──► backoff ──► re-execute
//	                │
//	                └─ persistent (same suspect accused across
//	                   attempts) ──► quarantine the suspect and repair:
//	                   substitute a spare at the suspect's slot (full
//	                   dimension preserved) while the Policy.Spares
//	                   pool lasts, else remap the survivors onto the
//	                   next-smaller subcube; either way re-run from the
//	                   host-held input
//
// The host holds the original input for the whole supervision (the
// environment's reliable checkpoint), so every attempt restarts from
// scratch; no partial distributed state is ever trusted. When the
// attempt budget is spent the supervisor escalates with an
// ExhaustedError carrying the full attempt history — it never returns
// an unverified result, preserving the fail-stop contract one layer
// up.
package recovery

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
)

// NoNode marks "no node" in quarantine fields.
const NoNode = -1

// Backoff configures the capped exponential backoff (with equal
// jitter) applied before every attempt after the first. The zero value
// selects the defaults.
type Backoff struct {
	// Base is the nominal wait before the first retry; it doubles per
	// subsequent retry. Default 10ms.
	Base time.Duration
	// Max caps the nominal wait. Default 2s.
	Max time.Duration
	// Jitter is the fraction of each wait that is randomized (equal
	// jitter: wait = nominal·(1−Jitter) + U[0,1)·nominal·Jitter).
	// Negative disables jitter; 0 selects the default 0.5.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Jitter == 0 {
		b.Jitter = 0.5
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	return b
}

// wait returns the backoff before retry number retry (1-based).
func (b Backoff) wait(retry int, rng *rand.Rand) time.Duration {
	nominal := b.Base
	for i := 1; i < retry && nominal < b.Max; i++ {
		nominal *= 2
	}
	if nominal > b.Max {
		nominal = b.Max
	}
	if b.Jitter == 0 {
		return nominal
	}
	fixed := float64(nominal) * (1 - b.Jitter)
	return time.Duration(fixed + rng.Float64()*float64(nominal)*b.Jitter)
}

// Policy tunes a supervision. The zero value selects the defaults.
type Policy struct {
	// MaxAttempts is the total sort-attempt budget, quarantined
	// re-runs included. Default 4.
	MaxAttempts int
	// Backoff shapes the waits between attempts.
	Backoff Backoff
	// PersistStreak is how many consecutive attempts must accuse the
	// same prime suspect before the fault is judged persistent and the
	// suspect quarantined. Default 2 (one retry proves the episode was
	// not transient).
	PersistStreak int
	// MinDim is the smallest cube dimension quarantine may shrink to.
	// Default 1 (a pair of nodes; dimension 0 cannot cross-check).
	MinDim int
	// Spares is the pool of spare physical node labels, consumed in
	// order. While the pool lasts, a quarantine substitutes the next
	// spare at the suspect's logical slot instead of shrinking the
	// cube, so repair costs one node instead of half the machine (the
	// N-modular-sparing alternative to graceful degradation). Labels
	// must be distinct and outside the initial cube [0, 2^dim).
	Spares []int
	// Seed makes the backoff jitter deterministic; 0 uses a fixed
	// default seed so supervisions are reproducible by default.
	Seed int64
	// Sleep replaces time.Sleep between attempts; tests inject a no-op
	// or a recorder. Nil means real sleeping.
	Sleep func(time.Duration)
	// Obs, when non-nil, receives attempt begin/end events (failed
	// attempts accumulate their virtual-time cost into the wasted-vticks
	// counter), quarantine decisions, and backoff waits.
	Obs *obs.Observer
	// Flight, when non-nil, receives a supervisor-level forensic dump on
	// every quarantine decision: the Quarantine event lands on the host
	// ring and the resulting report names the culprit. Share the Flight
	// the attempts' transports and node options were traced with so the
	// dump's rings hold the evidence that drove the diagnosis.
	Flight *forensic.Flight
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	p.Backoff = p.Backoff.withDefaults()
	if p.PersistStreak <= 0 {
		p.PersistStreak = 2
	}
	if p.MinDim < 0 {
		p.MinDim = 0
	} else if p.MinDim == 0 {
		p.MinDim = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Plan tells the runner what the next attempt looks like: the cube
// dimension to build and the identity of each logical slot.
type Plan struct {
	// Attempt is the 0-based attempt index.
	Attempt int
	// Dim is the hypercube dimension for this attempt.
	Dim int
	// Physical[l] is the physical (original-cube) label of logical
	// node l; attempt 0 is the identity. Fault injectors and operators
	// reason in physical labels, which stay stable across shrinks and
	// substitutions (a spare keeps its own label when it enters the
	// cube).
	Physical []int
	// Spares is the remaining spare pool, in consumption order. A
	// runner that models the machine pre-registers these as idle
	// endpoints so a substituted spare is a part that was already
	// powered, not one conjured at quarantine time.
	Spares []int
}

// Outcome is what one attempt produced.
type Outcome struct {
	// HostErrors are the diagnostic ERROR signals the attempt
	// delivered (empty on success or on unattributable failures).
	HostErrors []core.HostError
	// Cost is the attempt's virtual-time makespan in ticks, whether or
	// not it succeeded; failed attempts accumulate into WastedCost.
	Cost int64
	// Err is nil exactly when the attempt produced a *verified*
	// result. The runner must not report success on any other basis.
	Err error
}

// Runner executes one sort attempt according to plan and reports what
// happened. On success the runner keeps the result itself (the
// supervisor never touches payload data).
type Runner func(p Plan) Outcome

// Attempt is the per-attempt telemetry record.
type Attempt struct {
	// Index and Dim echo the plan.
	Index int
	Dim   int
	// Physical is the logical→physical mapping used.
	Physical []int
	// Backoff is the wait that preceded this attempt (0 for the first).
	Backoff time.Duration
	// HostErrors is the attempt's diagnostic evidence.
	HostErrors []core.HostError
	// Suspects is the diagnosis ranking in physical labels.
	Suspects []diagnose.Suspect
	// Quarantined is the physical node dropped after this attempt
	// (NoNode when no quarantine was decided).
	Quarantined int
	// Substituted is the spare physical label activated at the
	// suspect's logical slot (NoNode when the quarantine shrank the
	// cube instead, or when no quarantine was decided).
	Substituted int
	// Cost is the attempt's virtual-time makespan.
	Cost int64
	// Err is the attempt's failure, nil for the verified success.
	Err error
	// Verified marks the successful final attempt.
	Verified bool
}

// Substitution records one spare activation: after attempt Attempt
// the persistently accused Suspect was dropped and Spare took over its
// logical slot, preserving the cube dimension.
type Substitution struct {
	// Suspect is the quarantined physical label.
	Suspect int
	// Spare is the activated spare's physical label.
	Spare int
	// Attempt is the 0-based attempt index after which the
	// substitution was decided.
	Attempt int
}

// Report aggregates a supervision: the attempt history plus the
// recovery-overhead accounting, the analogue of the paper's S_FT
// overhead numbers for the recovery layer.
type Report struct {
	// Attempts is the full history, in order.
	Attempts []Attempt
	// FinalDim is the cube dimension of the last attempt.
	FinalDim int
	// Quarantined lists the physical labels dropped, in order
	// (suspects repaired by substitution included).
	Quarantined []int
	// Substitutions lists the spare activations, in order. Every
	// substitution corresponds to one Quarantined entry; quarantines
	// beyond len(Substitutions) fell back to subcube shrinks.
	Substitutions []Substitution
	// WastedCost is the virtual time burned by failed attempts.
	WastedCost int64
	// TotalBackoff is the wall-clock time spent waiting between
	// attempts.
	TotalBackoff time.Duration
}

// ExhaustedError escalates a supervision that spent its budget without
// a verified result. It carries the full attempt history so the
// operator inherits every diagnosis the supervisor made.
type ExhaustedError struct {
	// Attempts is the full per-attempt history.
	Attempts []Attempt
	// Quarantined lists the physical nodes dropped along the way.
	Quarantined []int
	// Substitutions lists the spare activations performed along the
	// way, so the operator knows which spares were consumed in vain.
	Substitutions []Substitution
}

// Error implements the error interface.
func (e *ExhaustedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery: attempt budget exhausted after %d attempts", len(e.Attempts))
	if len(e.Quarantined) > 0 {
		fmt.Fprintf(&b, " (quarantined nodes %v)", e.Quarantined)
	}
	if len(e.Substitutions) > 0 {
		spares := make([]int, len(e.Substitutions))
		for i, s := range e.Substitutions {
			spares[i] = s.Spare
		}
		fmt.Fprintf(&b, " (spares consumed %v)", spares)
	}
	if last := e.lastErr(); last != nil {
		fmt.Fprintf(&b, "; last error: %v", last)
	}
	return b.String()
}

// Unwrap exposes the last attempt's error for errors.Is/As chains.
func (e *ExhaustedError) Unwrap() error { return e.lastErr() }

func (e *ExhaustedError) lastErr() error {
	for i := len(e.Attempts) - 1; i >= 0; i-- {
		if e.Attempts[i].Err != nil {
			return e.Attempts[i].Err
		}
	}
	return nil
}

// Supervise drives runner to a verified result on a cube of dimension
// dim. It returns the telemetry report on success and an
// *ExhaustedError when the attempt budget is spent; any other error is
// a configuration problem. The supervisor itself never sees result
// data, so it structurally cannot return an unverified answer.
func Supervise(dim int, runner Runner, pol Policy) (*Report, error) {
	if runner == nil {
		return nil, fmt.Errorf("recovery: nil runner")
	}
	if dim < 0 || dim > hypercube.MaxDim {
		return nil, fmt.Errorf("recovery: dimension %d out of range [0,%d]", dim, hypercube.MaxDim)
	}
	pol = pol.withDefaults()
	if err := validateSpares(pol.Spares, dim); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(pol.Seed))
	physical := make([]int, 1<<uint(dim))
	for i := range physical {
		physical[i] = i
	}
	spares := append([]int(nil), pol.Spares...)
	hist := diagnose.NewHistory()
	rep := &Report{FinalDim: dim}

	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		var wait time.Duration
		if attempt > 0 {
			wait = pol.Backoff.wait(attempt, rng)
			pol.Sleep(wait)
			rep.TotalBackoff += wait
			pol.Obs.Backoff(wait)
		}
		plan := Plan{
			Attempt:  attempt,
			Dim:      dim,
			Physical: append([]int(nil), physical...),
			Spares:   append([]int(nil), spares...),
		}
		pol.Obs.AttemptBegin(attempt, dim)
		out := runner(plan)
		pol.Obs.AttemptEnd(attempt, dim, out.Cost, out.Err == nil)
		att := Attempt{
			Index:       attempt,
			Dim:         dim,
			Physical:    plan.Physical,
			Backoff:     wait,
			HostErrors:  out.HostErrors,
			Quarantined: NoNode,
			Substituted: NoNode,
			Cost:        out.Cost,
			Err:         out.Err,
		}
		rep.FinalDim = dim
		if out.Err == nil {
			att.Verified = true
			rep.Attempts = append(rep.Attempts, att)
			return rep, nil
		}
		rep.WastedCost += out.Cost
		att.Suspects = physicalSuspects(diagnose.Rank(out.HostErrors), physical)
		if len(att.Suspects) > 0 {
			hist.Record(att.Suspects[0].Node)
		} else {
			hist.Record(diagnose.NoSuspect)
		}
		if culprit, ok := hist.Persistent(pol.PersistStreak); ok {
			if logical := logicalOf(physical, culprit); logical >= 0 {
				newPhys, newSpares, newDim, spare, acted := remap(physical, spares, logical, dim, pol.MinDim)
				if acted {
					physical, spares, dim = newPhys, newSpares, newDim
					att.Quarantined = culprit
					att.Substituted = spare
					rep.Quarantined = append(rep.Quarantined, culprit)
					pol.Obs.Quarantine(culprit, attempt)
					pol.Flight.Quarantine(culprit, attempt,
						fmt.Sprintf("persistent accusation streak against physical node %d", culprit))
					if spare != NoNode {
						rep.Substitutions = append(rep.Substitutions,
							Substitution{Suspect: culprit, Spare: spare, Attempt: attempt})
						pol.Obs.Substitution(culprit, spare, attempt)
					}
					// The suspect is gone; accusations against it must not
					// condemn whoever inherits its traffic pattern.
					hist.Reset()
				}
			}
		}
		rep.Attempts = append(rep.Attempts, att)
	}
	return nil, &ExhaustedError{
		Attempts:      rep.Attempts,
		Quarantined:   rep.Quarantined,
		Substitutions: rep.Substitutions,
	}
}

// validateSpares rejects spare pools the substitution policy cannot
// honor: labels inside the initial cube would collide with an active
// node's identity, and duplicates would activate the same part twice.
func validateSpares(spares []int, dim int) error {
	n := 1 << uint(dim)
	seen := make(map[int]bool, len(spares))
	for _, s := range spares {
		if s < n {
			return fmt.Errorf("recovery: spare label %d inside the initial cube [0,%d)", s, n)
		}
		if seen[s] {
			return fmt.Errorf("recovery: duplicate spare label %d", s)
		}
		seen[s] = true
	}
	return nil
}

// remap decides and applies the quarantine action for the persistent
// suspect at logical slot logical: while the spare pool lasts, the
// next spare is substituted at the suspect's slot and the dimension is
// preserved; with a dry pool the cube shrinks to the half opposite the
// suspect, but never below minDim (and never below dimension 0 — a
// dim-0 cube has no axis to drop). It returns the new
// logical→physical map, the remaining pool, the new dimension, the
// spare used (NoNode for a shrink), and whether any action was taken;
// acted == false means the supervisor keeps retrying undegraded.
func remap(physical, spares []int, logical, dim, minDim int) (newPhys, newSpares []int, newDim, spare int, acted bool) {
	if dim < 0 || logical < 0 || logical >= len(physical) || len(physical) != 1<<uint(dim) {
		return physical, spares, dim, NoNode, false
	}
	if len(spares) > 0 {
		out := append([]int(nil), physical...)
		out[logical] = spares[0]
		return out, spares[1:], dim, spares[0], true
	}
	if dim > minDim && dim > 0 {
		return shrink(physical, logical, dim), spares, dim - 1, NoNode, true
	}
	return physical, spares, dim, NoNode, false
}

// physicalSuspects translates a diagnosis ranking from the attempt's
// logical labels to stable physical labels, dropping accusations that
// name labels outside the cube (a Byzantine node can claim anything).
func physicalSuspects(ranked []diagnose.Suspect, physical []int) []diagnose.Suspect {
	out := make([]diagnose.Suspect, 0, len(ranked))
	for _, s := range ranked {
		if s.Node < 0 || s.Node >= len(physical) {
			continue
		}
		s.Node = physical[s.Node]
		out = append(out, s)
	}
	return out
}

// logicalOf finds the logical slot currently holding physical label p,
// -1 when p has already been dropped.
func logicalOf(physical []int, p int) int {
	for l, ph := range physical {
		if ph == p {
			return l
		}
	}
	return -1
}

// shrink quarantines the logical node suspect by keeping the
// (dim−1)-subcube on the other side of the cube's top axis — every
// survivor is relabeled by dropping that axis bit, so the kept half in
// ascending order is exactly the new logical range [0, 2^(dim−1)).
func shrink(physical []int, suspect, dim int) []int {
	axis := dim - 1
	keepBit := 1 - hypercube.Bit(suspect, axis)
	out := make([]int, 0, len(physical)/2)
	for l, p := range physical {
		if hypercube.Bit(l, axis) == keepBit {
			out = append(out, p)
		}
	}
	return out
}
