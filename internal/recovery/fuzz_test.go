package recovery

import (
	"math/rand"
	"testing"
)

// The quarantine remap decides substitution vs. shrink vs. no-action
// from state assembled across attempts; a wrong decision here corrupts
// the logical→physical indirection every later attempt trusts. The
// fuzzer hands it arbitrary (dim, slot, pool, floor) combinations —
// malformed ones included — and checks it either rejects them
// (acted == false, inputs echoed back untouched) or performs exactly
// one well-formed repair. It must never panic: the dim-0 "shrink"
// that would compute a negative axis is the canonical trap.
func FuzzRemap(f *testing.F) {
	f.Add(3, 5, 1, 2, int64(11), false)
	f.Add(3, 0, 1, 0, int64(7), false)  // dry pool: shrink
	f.Add(1, 1, 1, 0, int64(3), false)  // at the MinDim floor: no action
	f.Add(0, 0, 0, 0, int64(1), false)  // dim 0: must refuse to shrink
	f.Add(0, 0, 0, 1, int64(1), false)  // dim 0 with a spare: substitution ok
	f.Add(2, 7, 1, 3, int64(9), true)   // corrupted map length: reject
	f.Add(5, -4, 1, 2, int64(5), false) // negative slot: reject
	f.Fuzz(func(t *testing.T, dim, logical, minDim, nspares int, seed int64, corrupt bool) {
		if dim < -1 {
			dim = -1 + (-dim)%10
		}
		if dim > 8 {
			dim = dim % 9
		}
		if nspares < 0 {
			nspares = -nspares
		}
		nspares %= 8

		rng := rand.New(rand.NewSource(seed))
		size := 0
		if dim >= 0 {
			size = 1 << uint(dim)
		}
		if corrupt && size > 0 {
			size += 1 + rng.Intn(3) // violate len(physical) == 2^dim
		}
		physical := rng.Perm(size + nspares + 4)[:size]
		spares := make([]int, nspares)
		for i := range spares {
			spares[i] = size + 100 + i
		}
		physIn := append([]int(nil), physical...)
		sparesIn := append([]int(nil), spares...)

		newPhys, newSpares, newDim, spare, acted := remap(physical, spares, logical, dim, minDim)

		if !acted {
			// Rejection must be total: inputs echoed back unchanged.
			if spare != NoNode || newDim != dim {
				t.Fatalf("acted=false but spare=%d newDim=%d (dim %d)", spare, newDim, dim)
			}
			if len(newPhys) != len(physIn) || len(newSpares) != len(sparesIn) {
				t.Fatalf("acted=false but slices resized: %v / %v", newPhys, newSpares)
			}
			for i := range physIn {
				if newPhys[i] != physIn[i] {
					t.Fatalf("acted=false but physical mutated: %v -> %v", physIn, newPhys)
				}
			}
			return
		}

		// Any action requires a well-formed input.
		if dim < 0 || logical < 0 || logical >= len(physIn) || len(physIn) != 1<<uint(dim) {
			t.Fatalf("acted on malformed input: dim=%d logical=%d len=%d", dim, logical, len(physIn))
		}
		if newDim != dim && newDim != dim-1 {
			t.Fatalf("newDim %d not in {%d,%d}", newDim, dim, dim-1)
		}
		if len(newPhys) != 1<<uint(newDim) {
			t.Fatalf("%d labels for dim %d", len(newPhys), newDim)
		}
		seen := make(map[int]bool, len(newPhys))
		for _, ph := range newPhys {
			if seen[ph] {
				t.Fatalf("label %d mapped twice in %v", ph, newPhys)
			}
			seen[ph] = true
		}

		if spare != NoNode {
			// Substitution: pool head lands exactly at the suspect's
			// slot, dimension preserved, pool shortened by one.
			if spare != sparesIn[0] {
				t.Fatalf("substituted %d, pool head was %d", spare, sparesIn[0])
			}
			if newDim != dim {
				t.Fatalf("substitution changed dim %d -> %d", dim, newDim)
			}
			if newPhys[logical] != spare {
				t.Fatalf("spare %d not at slot %d: %v", spare, logical, newPhys)
			}
			for i := range newPhys {
				if i != logical && newPhys[i] != physIn[i] {
					t.Fatalf("substitution disturbed slot %d: %v -> %v", i, physIn, newPhys)
				}
			}
			if len(newSpares) != len(sparesIn)-1 {
				t.Fatalf("pool went %d -> %d", len(sparesIn), len(newSpares))
			}
			for i := range newSpares {
				if newSpares[i] != sparesIn[i+1] {
					t.Fatalf("pool reordered: %v -> %v", sparesIn, newSpares)
				}
			}
			return
		}

		// Shrink: only with a dry pool, never at or below the floor,
		// never from dim 0; survivors are prior members minus the
		// suspect.
		if len(sparesIn) != 0 {
			t.Fatalf("shrank with %d spares pooled", len(sparesIn))
		}
		if dim <= minDim || dim == 0 {
			t.Fatalf("shrank from dim %d with floor %d", dim, minDim)
		}
		if newDim != dim-1 {
			t.Fatalf("shrink changed dim %d -> %d", dim, newDim)
		}
		prior := make(map[int]bool, len(physIn))
		for _, ph := range physIn {
			prior[ph] = true
		}
		for _, ph := range newPhys {
			if !prior[ph] {
				t.Fatalf("shrink invented label %d: %v from %v", ph, newPhys, physIn)
			}
			if ph == physIn[logical] {
				t.Fatalf("shrink retained the suspect %d: %v", ph, newPhys)
			}
		}
	})
}
