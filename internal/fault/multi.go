package fault

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/simnet"
)

// MultiResult is the outcome of a run with several simultaneous
// Byzantine processors.
type MultiResult struct {
	Specs   []Spec
	Verdict Verdict
}

// InjectSFTMulti runs S_FT with every listed fault active at once.
// Theorem 3 guarantees detection for up to log₂N − 1 faults provided
// the per-subcube bounds of Lemma 6 hold; the sweep in CoveragePairs
// maps where independent (non-colluding) fault pairs actually land.
func InjectSFTMulti(dim int, keys []int64, specs []Spec, timeout time.Duration) (MultiResult, error) {
	n := 1 << uint(dim)
	if len(keys) != n {
		return MultiResult{}, fmt.Errorf("fault: %d keys for %d nodes", len(keys), n)
	}
	seen := map[int]bool{}
	for _, s := range specs {
		if err := s.Validate(n); err != nil {
			return MultiResult{}, err
		}
		if seen[s.Node] {
			return MultiResult{}, fmt.Errorf("fault: node %d appears twice", s.Node)
		}
		seen[s.Node] = true
	}
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: timeout})
	if err != nil {
		return MultiResult{}, err
	}
	opts := make([]core.Options, n)
	for _, s := range specs {
		opts[s.Node] = core.Options{SkipChecks: true, Tamper: s.Tamper()}
	}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		return MultiResult{}, err
	}
	res := MultiResult{Specs: specs}
	switch {
	case oc.Detected():
		res.Verdict = Detected
	case checker.Verify(keys, oc.Sorted, true) != nil:
		res.Verdict = SilentWrong
	default:
		res.Verdict = CorrectDespiteFault
	}
	return res, nil
}

// CoveragePairs sweeps every unordered pair of distinct nodes as
// simultaneous, independently lying Byzantine processors and returns
// one result per pair. n−1 = dim−... for dim ≥ 2 a pair is within the
// paper's tolerance bound when dim ≥ 3.
func CoveragePairs(dim int, keys []int64, strategy Strategy, lie int64, timeout time.Duration) ([]MultiResult, error) {
	n := 1 << uint(dim)
	type pair struct{ a, b int }
	var pairs []pair
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			pairs = append(pairs, pair{a, b})
		}
	}
	out := make([]MultiResult, len(pairs))
	errs := make([]error, len(pairs))
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i, p := range pairs {
		wg.Add(1)
		go func(i int, p pair) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			specs := []Spec{
				{Node: p.a, Strategy: strategy, ActivateStage: 1, LieValue: lie},
				{Node: p.b, Strategy: strategy, ActivateStage: 1, LieValue: lie + 1},
			}
			r, err := InjectSFTMulti(dim, keys, specs, timeout)
			if err != nil {
				errs[i] = fmt.Errorf("fault: pair (%d,%d): %w", p.a, p.b, err)
				return
			}
			out[i] = r
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SummarizeMulti tallies multi-fault verdicts.
func SummarizeMulti(results []MultiResult) Summary {
	var s Summary
	for _, r := range results {
		s.Total++
		switch r.Verdict {
		case Detected:
			s.Detected++
		case CorrectDespiteFault:
			s.CorrectDespiteFault++
		case SilentWrong:
			s.SilentWrong++
		}
	}
	return s
}
