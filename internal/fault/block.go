package fault

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/blocksort"
	"repro/internal/checker"
	"repro/internal/hostsort"
	"repro/internal/obs/forensic"
	"repro/internal/simnet"
)

// InjectBlockFT runs the fault-tolerant block sort with one Byzantine
// processor per the spec and classifies the outcome — the block-scaled
// counterpart of InjectSFT, validating the paper's claim that "each of
// the predicates Φ scales by m" without losing coverage.
func InjectBlockFT(dim int, blocks [][]int64, spec Spec, timeout time.Duration) (Result, error) {
	n := 1 << uint(dim)
	if err := spec.Validate(n); err != nil {
		return Result{}, err
	}
	if len(blocks) != n {
		return Result{}, fmt.Errorf("fault: %d blocks for %d nodes", len(blocks), n)
	}
	flight := forensic.New(0)
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: timeout, Flight: flight})
	if err != nil {
		return Result{}, err
	}
	opts := make([]blocksort.Options, n)
	opts[spec.Node] = blocksort.Options{SkipChecks: true, Tamper: spec.Tamper()}
	for i := range opts {
		opts[i].Forensic = flight.Node(i)
	}
	oc, err := blocksort.RunFTWithOptions(nw, blocks, opts)
	if err != nil {
		return Result{}, err
	}
	res := Result{Spec: spec, Class: spec.Strategy.Class(), Label: spec.Strategy.String()}
	if oc.Detected() {
		res.classify(true, oc.HostErrors)
		res.attachForensic(flight, oc.HostErrors)
		return res, nil
	}
	all := hostsort.SortedBlocksFlat(blocks)
	got := hostsort.SortedBlocksFlat(oc.SortedBlocks)
	if cerr := checker.Verify(all, got, true); cerr != nil {
		res.Verdict = SilentWrong
	} else {
		res.Verdict = CorrectDespiteFault
	}
	return res, nil
}

// CoverageBlockFT sweeps the given strategies over every node against
// the fault-tolerant block sort, in (strategy, node) order.
func CoverageBlockFT(dim int, blocks [][]int64, strategies []Strategy, lie int64, timeout time.Duration) ([]Result, error) {
	n := 1 << uint(dim)
	type job struct{ strat, node int }
	var jobs []job
	for si := range strategies {
		for id := 0; id < n; id++ {
			jobs = append(jobs, job{si, id})
		}
	}
	out := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i, jb := range jobs {
		wg.Add(1)
		go func(i int, jb job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec := Spec{Node: jb.node, Strategy: strategies[jb.strat], ActivateStage: 1, LieValue: lie}
			r, err := InjectBlockFT(dim, blocks, spec, timeout)
			if err != nil {
				errs[i] = fmt.Errorf("fault: block coverage %v node %d: %w", spec.Strategy, jb.node, err)
				return
			}
			out[i] = r
		}(i, jb)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
