package fault

import (
	"fmt"
	"time"

	"repro/internal/blocksort"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/hostsort"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/simnet"
)

// Class partitions the adversary menu by which part of the machine
// lies. The paper's fault model (and PRs through 5) covers the first
// two; comparison and memory faults are the application-level axis the
// detection-coverage matrix measures: the Φ predicates claim to catch
// violations regardless of cause, and these classes produce wrong
// state without a single tampered message.
type Class int

const (
	// ClassMessage: Byzantine messages — lies on the wire (key, view,
	// header, and framing attacks).
	ClassMessage Class = iota + 1
	// ClassAbsence: expected messages never arrive (fail-stop silence,
	// crashes, dead links).
	ClassAbsence
	// ClassComparison: the node's comparator lies (Geissmann et al.);
	// messages are honest reports of wrongly-routed keys.
	ClassComparison
	// ClassMemory: resident cells corrupt between accesses
	// (Kopelowitz & Talmon); messages are honest reports of corrupted
	// state.
	ClassMemory
)

var classNames = map[Class]string{
	ClassMessage:    "message",
	ClassAbsence:    "absence",
	ClassComparison: "comparison",
	ClassMemory:     "memory",
}

// String returns the class name.
func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// AllClasses lists every adversary class, in matrix row order.
func AllClasses() []Class {
	return []Class{ClassMessage, ClassAbsence, ClassComparison, ClassMemory}
}

// Obs maps the class to its observability counter index.
func (c Class) Obs() obs.FaultClass {
	switch c {
	case ClassAbsence:
		return obs.FaultAbsence
	case ClassComparison:
		return obs.FaultComparison
	case ClassMemory:
		return obs.FaultMemory
	default:
		return obs.FaultMessage
	}
}

// Class reports which adversary class a message strategy belongs to:
// Silence is observed as absence, everything else as a Byzantine
// message.
func (s Strategy) Class() Class {
	if s == Silence {
		return ClassAbsence
	}
	return ClassMessage
}

// --- comparison- and memory-fault injection drivers ------------------------

// injectSFTWith runs S_FT with the given options at one faulty node
// and classifies the outcome into res (whose Class/Label the caller
// pre-fills).
func injectSFTWith(dim int, keys []int64, faulty int, o core.Options, timeout time.Duration, res Result) (Result, error) {
	n := 1 << uint(dim)
	if len(keys) != n {
		return Result{}, fmt.Errorf("fault: %d keys for %d nodes", len(keys), n)
	}
	flight := forensic.New(0)
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: timeout, Flight: flight})
	if err != nil {
		return Result{}, err
	}
	opts := make([]core.Options, n)
	opts[faulty] = o
	for i := range opts {
		opts[i].Forensic = flight.Node(i)
	}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		return Result{}, err
	}
	if oc.Detected() {
		res.classify(true, oc.HostErrors)
		res.attachForensic(flight, oc.HostErrors)
		return res, nil
	}
	if cerr := checker.Verify(keys, oc.Sorted, true); cerr != nil {
		res.Verdict = SilentWrong
	} else {
		res.Verdict = CorrectDespiteFault
	}
	return res, nil
}

// injectBlockFTWith is injectSFTWith for the fault-tolerant block sort.
func injectBlockFTWith(dim int, blocks [][]int64, faulty int, o blocksort.Options, timeout time.Duration, res Result) (Result, error) {
	n := 1 << uint(dim)
	if len(blocks) != n {
		return Result{}, fmt.Errorf("fault: %d blocks for %d nodes", len(blocks), n)
	}
	flight := forensic.New(0)
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: timeout, Flight: flight})
	if err != nil {
		return Result{}, err
	}
	opts := make([]blocksort.Options, n)
	opts[faulty] = o
	for i := range opts {
		opts[i].Forensic = flight.Node(i)
	}
	oc, err := blocksort.RunFTWithOptions(nw, blocks, opts)
	if err != nil {
		return Result{}, err
	}
	if oc.Detected() {
		res.classify(true, oc.HostErrors)
		res.attachForensic(flight, oc.HostErrors)
		return res, nil
	}
	all := hostsort.SortedBlocksFlat(blocks)
	got := hostsort.SortedBlocksFlat(oc.SortedBlocks)
	if cerr := checker.Verify(all, got, true); cerr != nil {
		res.Verdict = SilentWrong
	} else {
		res.Verdict = CorrectDespiteFault
	}
	return res, nil
}

// InjectCmpSFT runs S_FT with one node comparing through the spec's
// lying comparator (the node's own checks off — the faulty comparator
// would pass them on its own wrong view of order anyway) and
// classifies the outcome.
func InjectCmpSFT(dim int, keys []int64, spec CmpSpec, timeout time.Duration) (Result, error) {
	if err := spec.Validate(1 << uint(dim)); err != nil {
		return Result{}, err
	}
	o := core.Options{SkipChecks: true, Compare: spec.Comparator()}
	res := Result{Class: ClassComparison, Label: spec.Mode.String()}
	return injectSFTWith(dim, keys, spec.Node, o, timeout, res)
}

// InjectCmpBlockFT runs the fault-tolerant block sort with one node's
// merge-splits driven by the spec's lying comparator.
func InjectCmpBlockFT(dim int, blocks [][]int64, spec CmpSpec, timeout time.Duration) (Result, error) {
	if err := spec.Validate(1 << uint(dim)); err != nil {
		return Result{}, err
	}
	o := blocksort.Options{SkipChecks: true, Compare: spec.Comparator()}
	res := Result{Class: ClassComparison, Label: spec.Mode.String()}
	return injectBlockFTWith(dim, blocks, spec.Node, o, timeout, res)
}

// InjectMemSFT runs S_FT with one node's resident key corrupting at
// stage boundaries per the spec and classifies the outcome.
func InjectMemSFT(dim int, keys []int64, spec MemSpec, timeout time.Duration) (Result, error) {
	if err := spec.Validate(1 << uint(dim)); err != nil {
		return Result{}, err
	}
	o := core.Options{SkipChecks: true, CorruptMemory: spec.Corruptor()}
	res := Result{Class: ClassMemory, Label: spec.Mode.String()}
	return injectSFTWith(dim, keys, spec.Node, o, timeout, res)
}

// InjectMemBlockFT runs the fault-tolerant block sort with one node's
// resident block corrupting at stage boundaries per the spec.
func InjectMemBlockFT(dim int, blocks [][]int64, spec MemSpec, timeout time.Duration) (Result, error) {
	if err := spec.Validate(1 << uint(dim)); err != nil {
		return Result{}, err
	}
	o := blocksort.Options{SkipChecks: true, CorruptMemory: spec.Corruptor()}
	res := Result{Class: ClassMemory, Label: spec.Mode.String()}
	return injectBlockFTWith(dim, blocks, spec.Node, o, timeout, res)
}
