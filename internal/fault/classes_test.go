package fault

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/wire"
)

func TestClassNames(t *testing.T) {
	want := map[Class]string{
		ClassMessage:    "message",
		ClassAbsence:    "absence",
		ClassComparison: "comparison",
		ClassMemory:     "memory",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), name)
		}
	}
	if got := Class(42).String(); got != "class(42)" {
		t.Errorf("unknown class = %q", got)
	}
	if len(AllClasses()) != 4 {
		t.Errorf("AllClasses() = %v", AllClasses())
	}
}

func TestStrategyClass(t *testing.T) {
	for _, s := range AllStrategies() {
		want := ClassMessage
		if s == Silence {
			want = ClassAbsence
		}
		if s.Class() != want {
			t.Errorf("%v.Class() = %v, want %v", s, s.Class(), want)
		}
	}
}

func TestClassObsMapping(t *testing.T) {
	want := map[Class]obs.FaultClass{
		ClassMessage:    obs.FaultMessage,
		ClassAbsence:    obs.FaultAbsence,
		ClassComparison: obs.FaultComparison,
		ClassMemory:     obs.FaultMemory,
	}
	for c, fc := range want {
		if c.Obs() != fc {
			t.Errorf("%v.Obs() = %v, want %v", c, c.Obs(), fc)
		}
	}
}

func TestVerdictStringUnknown(t *testing.T) {
	cases := map[Verdict]string{
		Detected:            "detected",
		CorrectDespiteFault: "correct-despite-fault",
		SilentWrong:         "SILENT-WRONG",
		Verdict(0):          "verdict(0)",
		Verdict(99):         "verdict(99)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestCmpSpecValidate(t *testing.T) {
	good := CmpSpec{Node: 1, Mode: CmpPersistent, Rate: 0.5, ActivateStage: 1}
	if err := good.Validate(8); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	for name, bad := range map[string]CmpSpec{
		"node":  {Node: 8, Mode: CmpPersistent, Rate: 0.5, ActivateStage: 1},
		"mode":  {Node: 1, Mode: CmpMode(9), Rate: 0.5, ActivateStage: 1},
		"rate":  {Node: 1, Mode: CmpTransient, Rate: 1.5, ActivateStage: 1},
		"stage": {Node: 1, Mode: CmpTransient, Rate: 0.5, ActivateStage: 0},
	} {
		if err := bad.Validate(8); err == nil {
			t.Errorf("%s: bad spec accepted", name)
		}
	}
	if got := CmpMode(9).String(); got != "cmpmode(9)" {
		t.Errorf("unknown cmp mode = %q", got)
	}
}

func TestMemSpecValidate(t *testing.T) {
	good := MemSpec{Node: 1, Mode: MemWipe, Rate: 1, ActivateStage: 1}
	if err := good.Validate(8); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	for name, bad := range map[string]MemSpec{
		"node":  {Node: -1, Mode: MemFlip, Rate: 1, ActivateStage: 1},
		"mode":  {Node: 1, Mode: MemMode(9), Rate: 1, ActivateStage: 1},
		"rate":  {Node: 1, Mode: MemStuck, Rate: -0.1, ActivateStage: 1},
		"stage": {Node: 1, Mode: MemStuck, Rate: 1, ActivateStage: 0},
	} {
		if err := bad.Validate(8); err == nil {
			t.Errorf("%s: bad spec accepted", name)
		}
	}
	if got := MemMode(9).String(); got != "memmode(9)" {
		t.Errorf("unknown mem mode = %q", got)
	}
}

// TestPersistentComparatorConsistency checks the Geissmann et al.
// persistence property: a lying pair lies identically on every
// evaluation, in either argument order.
func TestPersistentComparatorConsistency(t *testing.T) {
	spec := CmpSpec{Node: 0, Mode: CmpPersistent, Rate: 0.5, Seed: 42, ActivateStage: 1}
	cmp := spec.Comparator()
	lies := 0
	for a := int64(0); a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			first := cmp(1, a, b)
			if !first {
				lies++
			}
			for trial := 0; trial < 3; trial++ {
				if cmp(2, a, b) != first {
					t.Fatalf("pair (%d,%d) changed its answer", a, b)
				}
				// A consistent comparator answers the reversed pair with
				// the negation (no ties among distinct keys).
				if cmp(2, b, a) == first {
					t.Fatalf("pair (%d,%d) inconsistent under argument swap", a, b)
				}
			}
			// Pre-activation comparisons are honest regardless.
			if cmp(0, a, b) != (a <= b) {
				t.Fatalf("pair (%d,%d) lied before activation", a, b)
			}
		}
	}
	if lies == 0 {
		t.Fatal("rate-0.5 persistent comparator never lied across 190 pairs")
	}
}

func TestTransientComparatorRateExtremes(t *testing.T) {
	always := CmpSpec{Node: 0, Mode: CmpTransient, Rate: 1, Seed: 1, ActivateStage: 1}.Comparator()
	never := CmpSpec{Node: 0, Mode: CmpTransient, Rate: 0, Seed: 1, ActivateStage: 1}.Comparator()
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			if always(1, a, b) == (a <= b) {
				t.Fatalf("rate-1 transient comparator told the truth for (%d,%d)", a, b)
			}
			if never(1, a, b) != (a <= b) {
				t.Fatalf("rate-0 transient comparator lied for (%d,%d)", a, b)
			}
		}
	}
}

func TestCorruptorModes(t *testing.T) {
	base := []int64{5, 6, 7, 8}
	fresh := func() []int64 { return append([]int64(nil), base...) }

	stuck := MemSpec{Node: 0, Mode: MemStuck, Rate: 1, Seed: 3, ActivateStage: 1, StuckValue: -9}.Corruptor()
	keys := fresh()
	stuck(1, keys)
	for i, k := range keys {
		if k != -9 {
			t.Fatalf("stuck-at rate 1: keys[%d] = %d", i, k)
		}
	}

	flip := MemSpec{Node: 0, Mode: MemFlip, Rate: 1, Seed: 3, ActivateStage: 1}.Corruptor()
	keys = fresh()
	flip(1, keys)
	for i, k := range keys {
		if k == base[i] {
			t.Fatalf("flip rate 1 left keys[%d] untouched", i)
		}
	}

	wipe := MemSpec{Node: 0, Mode: MemWipe, Rate: 1, Seed: 3, ActivateStage: 1, StuckValue: 0}.Corruptor()
	keys = fresh()
	wipe(1, keys)
	wiped := 0
	for _, k := range keys {
		if k == 0 {
			wiped++
		}
	}
	if wiped == 0 {
		t.Fatal("wipe rate 1 corrupted nothing")
	}

	// Pre-activation boundaries are untouched.
	keys = fresh()
	stuck2 := MemSpec{Node: 0, Mode: MemStuck, Rate: 1, Seed: 3, ActivateStage: 2, StuckValue: -9}.Corruptor()
	stuck2(1, keys)
	for i, k := range keys {
		if k != base[i] {
			t.Fatalf("pre-activation corruption at keys[%d]", i)
		}
	}
}

// TestCmpInjectorsDetect pins the headline property: a maximally lying
// comparator at one node fail-stops both fault-tolerant algorithms.
func TestCmpInjectorsDetect(t *testing.T) {
	for _, mode := range AllCmpModes() {
		spec := CmpSpec{Node: 2, Mode: mode, Rate: 1, Seed: 11, ActivateStage: 1}
		r, err := InjectCmpSFT(3, paperKeys(), spec, faultTimeout)
		if err != nil {
			t.Fatalf("%v S_FT: %v", mode, err)
		}
		if r.Verdict != Detected {
			t.Errorf("%v S_FT: verdict %v", mode, r.Verdict)
		}
		if r.Class != ClassComparison || r.Label != mode.String() {
			t.Errorf("%v S_FT: class %v label %q", mode, r.Class, r.Label)
		}
		spec.Node = 1
		rb, err := InjectCmpBlockFT(2, blockWorkload(2, 2, 5), spec, faultTimeout)
		if err != nil {
			t.Fatalf("%v BlockFT: %v", mode, err)
		}
		if rb.Verdict != Detected {
			t.Errorf("%v BlockFT: verdict %v", mode, rb.Verdict)
		}
	}
}

// TestMemInjectorsDetect pins the same for stage-boundary memory
// corruption: an honest node reporting corrupted resident state is
// caught by its peers' predicates.
func TestMemInjectorsDetect(t *testing.T) {
	for _, mode := range AllMemModes() {
		spec := MemSpec{Node: 2, Mode: mode, Rate: 1, Seed: 11, ActivateStage: 1, StuckValue: 1 << 20}
		r, err := InjectMemSFT(3, paperKeys(), spec, faultTimeout)
		if err != nil {
			t.Fatalf("%v S_FT: %v", mode, err)
		}
		if r.Verdict != Detected {
			t.Errorf("%v S_FT: verdict %v", mode, r.Verdict)
		}
		if r.Class != ClassMemory || r.Label != mode.String() {
			t.Errorf("%v S_FT: class %v label %q", mode, r.Class, r.Label)
		}
		spec.Node = 3
		rb, err := InjectMemBlockFT(2, blockWorkload(2, 2, 5), spec, faultTimeout)
		if err != nil {
			t.Fatalf("%v BlockFT: %v", mode, err)
		}
		if rb.Verdict != Detected {
			t.Errorf("%v BlockFT: verdict %v", mode, rb.Verdict)
		}
	}
}

func TestCmpMemInjectorsRejectBadSpecs(t *testing.T) {
	if _, err := InjectCmpSFT(3, paperKeys(), CmpSpec{Node: 0, Mode: CmpTransient, Rate: 1}, faultTimeout); err == nil {
		t.Error("activate-stage-0 cmp spec accepted")
	}
	if _, err := InjectMemSFT(3, paperKeys()[:2], MemSpec{Node: 0, Mode: MemFlip, Rate: 1, ActivateStage: 1}, faultTimeout); err == nil {
		t.Error("short workload accepted")
	}
	if _, err := InjectMemBlockFT(2, [][]int64{{1}}, MemSpec{Node: 0, Mode: MemFlip, Rate: 1, ActivateStage: 1}, faultTimeout); err == nil {
		t.Error("short block workload accepted")
	}
}

// TestTampersNeverAliasCallerState is the aliasing regression test for
// the tamper hooks: whatever a hook returns, the message it was handed
// — header and payload bytes — must be untouched, because the
// runtimes' payloads alias the sender's encode scratch.
func TestTampersNeverAliasCallerState(t *testing.T) {
	makeMsg := func() *wire.Message {
		v := wire.NewView(0, 4)
		v.Mask.Add(0)
		v.Mask.Add(1)
		v.Vals = []int64{3, 9}
		payload, err := wire.EncodeFTExchange(wire.FTExchangePayload{Keys: []int64{3, 9}, View: v})
		if err != nil {
			t.Fatal(err)
		}
		return &wire.Message{Kind: wire.KindFTExchange, From: 0, To: 1, Stage: 2, Iter: 1, Payload: payload}
	}
	pristine := makeMsg()

	check := func(name string, hook func(*wire.Message) *wire.Message, calls int) {
		m := makeMsg()
		for i := 0; i < calls; i++ {
			hook(m)
			if m.Kind != pristine.Kind || m.Stage != pristine.Stage || m.Iter != pristine.Iter ||
				m.From != pristine.From || m.To != pristine.To {
				t.Fatalf("%s call %d mutated the caller's header: %+v", name, i, m)
			}
			if !bytes.Equal(m.Payload, pristine.Payload) {
				t.Fatalf("%s call %d mutated the caller's payload", name, i)
			}
		}
	}

	for _, st := range AllStrategies() {
		spec := Spec{Node: 0, Strategy: st, ActivateStage: 1, LieValue: 999}
		check(st.String(), spec.Tamper(), 4)
	}
	// Enough calls to hit every RandomAdversary mutation arm.
	check("random-adversary", RandomAdversary(7, 1), 64)
	check("snr-tamper", snrTamper(Spec{Node: 0, Strategy: KeyLie, ActivateStage: 1, LieValue: 5}), 4)
}

// TestRandomAdversaryReturnsDistinctClones checks that mutating arms
// return a message whose payload does not share storage with the
// input.
func TestRandomAdversaryReturnsDistinctClones(t *testing.T) {
	adv := RandomAdversary(7, 1)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	mutated := 0
	for i := 0; i < 64; i++ {
		m := &wire.Message{Kind: wire.KindFTExchange, Stage: 2, Iter: 1,
			Payload: append([]byte(nil), payload...)}
		out := adv(m)
		if out == nil || out == m {
			continue
		}
		mutated++
		if len(out.Payload) > 0 && len(m.Payload) > 0 && &out.Payload[0] == &m.Payload[0] {
			t.Fatalf("call %d returned a clone sharing payload storage", i)
		}
	}
	if mutated == 0 {
		t.Fatal("adversary never mutated in 64 calls")
	}
}

func TestFaultOutcomeCounters(t *testing.T) {
	o := obs.New(obs.NewRegistry(), 8)
	o.FaultOutcome(obs.FaultComparison, true, false)
	o.FaultOutcome(obs.FaultComparison, false, false)
	o.FaultOutcome(obs.FaultMemory, false, true)
	m := o.Metrics()
	if got := m.FaultRuns[obs.FaultComparison].Value(); got != 2 {
		t.Errorf("comparison runs = %d", got)
	}
	if got := m.FaultDetected[obs.FaultComparison].Value(); got != 1 {
		t.Errorf("comparison detected = %d", got)
	}
	if got := m.FaultSilent[obs.FaultMemory].Value(); got != 1 {
		t.Errorf("memory silent = %d", got)
	}
	if got := m.FaultSilent[obs.FaultComparison].Value(); got != 0 {
		t.Errorf("comparison silent = %d", got)
	}
	// Nil-safety and range guards.
	var nilObs *obs.Observer
	nilObs.FaultOutcome(obs.FaultMessage, true, false)
	o.FaultOutcome(obs.FaultClass(99), true, false)
	if got := strings.TrimSpace(obs.FaultClass(99).String()); got != "faultclass(99)" {
		t.Errorf("unknown fault class = %q", got)
	}
}
