package fault

import (
	"math/rand"
	"testing"
)

func blockWorkload(dim, m int, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << uint(dim)
	blocks := make([][]int64, n)
	for i := range blocks {
		blocks[i] = make([]int64, m)
		for j := range blocks[i] {
			blocks[i][j] = int64(rng.Intn(200) - 100)
		}
	}
	return blocks
}

// The predicates scale by m (paper, Section 5): with blocks of keys
// per node, the strategy × node sweep must still show zero
// silent-wrong outcomes.
func TestBlockFTCoverageNoSilentWrong(t *testing.T) {
	blocks := blockWorkload(3, 4, 55)
	strategies := []Strategy{KeyLie, SplitLie, ViewLie, WrongCompare, Silence, MaskInflation}
	results, err := CoverageBlockFT(3, blocks, strategies, 7777, faultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if sum.SilentWrong != 0 {
		for _, r := range results {
			if r.Verdict == SilentWrong {
				t.Errorf("SILENT WRONG: node %d strategy %v", r.Spec.Node, r.Spec.Strategy)
			}
		}
		t.Fatalf("summary: %+v", sum)
	}
	if sum.Total != len(strategies)*8 {
		t.Errorf("total = %d", sum.Total)
	}
	if sum.Detected < sum.Total*3/4 {
		t.Errorf("only %d/%d detected", sum.Detected, sum.Total)
	}
}

func TestInjectBlockFTValidation(t *testing.T) {
	good := Spec{Node: 0, Strategy: KeyLie, ActivateStage: 1}
	if _, err := InjectBlockFT(2, [][]int64{{1}}, good, faultTimeout); err == nil {
		t.Error("wrong block count: want error")
	}
	bad := Spec{Node: 0, Strategy: KeyLie, ActivateStage: 0}
	if _, err := InjectBlockFT(2, blockWorkload(2, 2, 1), bad, faultTimeout); err == nil {
		t.Error("activate stage 0: want error")
	}
}

func TestInjectBlockFTHonestIsClean(t *testing.T) {
	// A spec that never activates (stage beyond the run) behaves as an
	// honest run: correct despite "fault".
	blocks := blockWorkload(2, 3, 9)
	spec := Spec{Node: 1, Strategy: KeyLie, ActivateStage: 99, LieValue: 1}
	r, err := InjectBlockFT(2, blocks, spec, faultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != CorrectDespiteFault {
		t.Errorf("verdict = %v", r.Verdict)
	}
}
