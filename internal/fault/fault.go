// Package fault implements the paper's Definition 3 fault classes as
// injectable behaviours: Byzantine processors (which lie maliciously
// in structured ways), Byzantine links (which corrupt, drop, or
// duplicate raw messages), and fail-stop silence. It also provides the
// coverage experiment of Section 4: sweeping strategies × fault sites
// and reporting whether the constraint predicate detected every
// corruption (the fail-stop guarantee of Theorem 3).
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/wire"
)

// Strategy enumerates Byzantine processor behaviours. Each corresponds
// to a distinct way a faulty node can attack the sort.
type Strategy int

const (
	// KeyLie substitutes a bogus value for every key the node sends.
	KeyLie Strategy = iota + 1
	// SplitLie reports a different value for the node's own view entry
	// to every receiver — the inconsistency attack Φ_C targets.
	SplitLie
	// ViewLie corrupts a relayed view entry (a lie about another
	// node's value).
	ViewLie
	// WrongCompare swaps the min/max halves of compare-exchange
	// replies, violating the schedule's direction.
	WrongCompare
	// Silence stops sending entirely (fail-stop behaviour observed by
	// peers as message absence).
	Silence
	// MaskInflation claims knowledge of view slots the exchange
	// schedule cannot have delivered yet.
	MaskInflation
	// StaleReplay re-labels messages with an earlier stage/iteration,
	// as a faulty node replaying old traffic would.
	StaleReplay
	// DigestLie corrupts the view's aggregate multiset digest while
	// leaving the relayed entries honest — the attack aimed at the
	// digest fast path itself. Receivers must notice the aggregate
	// disagreeing with the entries it summarizes.
	DigestLie
	// PermuteLie swaps the first and last relayed view entries,
	// corrupting slot attribution while preserving the multiset — so
	// the aggregate digest stays consistent with the entries and only
	// element-level evidence (held-copy conflicts, Φ_P shape) can
	// catch it.
	PermuteLie
)

var strategyNames = map[Strategy]string{
	KeyLie:        "key-lie",
	SplitLie:      "split-lie",
	ViewLie:       "view-lie",
	WrongCompare:  "wrong-compare",
	Silence:       "silence",
	MaskInflation: "mask-inflation",
	StaleReplay:   "stale-replay",
	DigestLie:     "digest-lie",
	PermuteLie:    "permute-lie",
}

// String returns the strategy's kebab-case name.
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// AllStrategies lists every Byzantine strategy, for sweeps.
func AllStrategies() []Strategy {
	return []Strategy{KeyLie, SplitLie, ViewLie, WrongCompare, Silence, MaskInflation, StaleReplay, DigestLie, PermuteLie}
}

// Spec describes one injected processor fault.
type Spec struct {
	// Node is the faulty node's label.
	Node int
	// Strategy is the Byzantine behaviour.
	Strategy Strategy
	// ActivateStage is the first stage at which the fault manifests.
	// Per environmental assumption 5 all nodes are non-faulty through
	// the first message exchange, so this must be >= 1 for guaranteed
	// detection semantics (0 would amount to different input data).
	ActivateStage int
	// LieValue parameterizes value-substitution strategies.
	LieValue int64
}

// Validate rejects malformed specs.
func (s Spec) Validate(nodes int) error {
	if s.Node < 0 || s.Node >= nodes {
		return fmt.Errorf("fault: node %d outside [0,%d)", s.Node, nodes)
	}
	if _, ok := strategyNames[s.Strategy]; !ok {
		return fmt.Errorf("fault: unknown strategy %d", int(s.Strategy))
	}
	if s.ActivateStage < 1 {
		return fmt.Errorf("fault: activate stage %d violates assumption 5 (must be >= 1)", s.ActivateStage)
	}
	return nil
}

// Tamper builds the message-tampering hook implementing the spec.
// The hook is stateless with respect to the run and safe to use for a
// single node's outgoing traffic.
func (s Spec) Tamper() func(m *wire.Message) *wire.Message {
	switch s.Strategy {
	case KeyLie:
		return s.tamperKeys()
	case SplitLie:
		return s.tamperSplitLie()
	case ViewLie:
		return s.tamperViewLie()
	case WrongCompare:
		return s.tamperWrongCompare()
	case Silence:
		return s.tamperSilence()
	case MaskInflation:
		return s.tamperMaskInflation()
	case StaleReplay:
		return s.tamperStaleReplay()
	case DigestLie:
		return s.tamperDigestLie()
	case PermuteLie:
		return s.tamperPermuteLie()
	default:
		return func(m *wire.Message) *wire.Message { return m }
	}
}

func (s Spec) active(m *wire.Message) bool {
	return int(m.Stage) >= s.ActivateStage
}

func (s Spec) tamperKeys() func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		if !s.active(m) || m.Kind != wire.KindFTExchange {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil {
			return m
		}
		for i := range p.Keys {
			p.Keys[i] = s.LieValue
		}
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		return withPayload(m, buf)
	}
}

func (s Spec) tamperSplitLie() func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		rewrite := func(v *wire.View) bool {
			slot := s.Node - int(v.Base)
			changed := false
			for i, idx := range v.Mask.Indices() {
				if idx == slot {
					b := v.Block(i)
					for k := range b {
						b[k] = s.LieValue + int64(m.To) // differs per receiver
					}
					changed = true
				}
			}
			return changed
		}
		if !s.active(m) {
			return m
		}
		switch m.Kind {
		case wire.KindFTExchange:
			p, err := wire.DecodeFTExchange(m.Payload)
			if err != nil || !rewrite(&p.View) {
				return m
			}
			buf, err := wire.EncodeFTExchange(p)
			if err != nil {
				return m
			}
			return withPayload(m, buf)
		case wire.KindVerify:
			p, err := wire.DecodeVerify(m.Payload)
			if err != nil || !rewrite(&p.View) {
				return m
			}
			buf, err := wire.EncodeVerify(p)
			if err != nil {
				return m
			}
			return withPayload(m, buf)
		}
		return m
	}
}

func (s Spec) tamperViewLie() func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		if !s.active(m) || m.Kind != wire.KindFTExchange {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil || len(p.View.Vals) == 0 {
			return m
		}
		// Corrupt the last relayed entry — typically another node's.
		p.View.Vals[len(p.View.Vals)-1] = s.LieValue
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		return withPayload(m, buf)
	}
}

func (s Spec) tamperWrongCompare() func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		if !s.active(m) || m.Kind != wire.KindFTExchange {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil || len(p.Keys) < 2 || len(p.Keys)%2 != 0 {
			return m
		}
		half := len(p.Keys) / 2
		for i := 0; i < half; i++ {
			p.Keys[i], p.Keys[half+i] = p.Keys[half+i], p.Keys[i]
		}
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		return withPayload(m, buf)
	}
}

func (s Spec) tamperSilence() func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		if !s.active(m) {
			return m
		}
		return nil
	}
}

func (s Spec) tamperMaskInflation() func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		if !s.active(m) || m.Kind != wire.KindFTExchange {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil {
			return m
		}
		v := &p.View
		for i := 0; i < int(v.Size); i++ {
			if v.Mask.Has(i) {
				continue
			}
			v.Mask.Add(i)
			idxs := v.Mask.Indices()
			bl := int(v.BlockLen)
			vals := make([]int64, 0, len(idxs)*bl)
			vi := 0
			for _, idx := range idxs {
				if idx == i {
					for k := 0; k < bl; k++ {
						vals = append(vals, s.LieValue)
					}
					continue
				}
				vals = append(vals, v.Vals[vi*bl:(vi+1)*bl]...)
				vi++
			}
			v.Vals = vals
			break
		}
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		return withPayload(m, buf)
	}
}

func (s Spec) tamperDigestLie() func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		corrupt := func(v *wire.View) {
			v.Dig.Sum += uint64(s.LieValue)*2 + 1 // always changes Sum
			v.Dig.Xor ^= wire.MixKey(s.LieValue) | 1
		}
		if !s.active(m) {
			return m
		}
		switch m.Kind {
		case wire.KindFTExchange:
			p, err := wire.DecodeFTExchange(m.Payload)
			if err != nil {
				return m
			}
			corrupt(&p.View)
			buf, err := wire.EncodeFTExchange(p)
			if err != nil {
				return m
			}
			return withPayload(m, buf)
		case wire.KindVerify:
			p, err := wire.DecodeVerify(m.Payload)
			if err != nil {
				return m
			}
			corrupt(&p.View)
			buf, err := wire.EncodeVerify(p)
			if err != nil {
				return m
			}
			return withPayload(m, buf)
		}
		return m
	}
}

func (s Spec) tamperPermuteLie() func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		swap := func(v *wire.View) bool {
			n := len(v.Vals)
			bl := int(v.BlockLen)
			if n < 2*bl {
				return false // fewer than two relayed slots
			}
			differ := false
			for k := 0; k < bl; k++ {
				if v.Vals[k] != v.Vals[n-bl+k] {
					differ = true
				}
				v.Vals[k], v.Vals[n-bl+k] = v.Vals[n-bl+k], v.Vals[k]
			}
			return differ // a swap of identical entries is no lie
		}
		if !s.active(m) {
			return m
		}
		switch m.Kind {
		case wire.KindFTExchange:
			p, err := wire.DecodeFTExchange(m.Payload)
			if err != nil || !swap(&p.View) {
				return m
			}
			buf, err := wire.EncodeFTExchange(p)
			if err != nil {
				return m
			}
			return withPayload(m, buf)
		case wire.KindVerify:
			p, err := wire.DecodeVerify(m.Payload)
			if err != nil || !swap(&p.View) {
				return m
			}
			buf, err := wire.EncodeVerify(p)
			if err != nil {
				return m
			}
			return withPayload(m, buf)
		}
		return m
	}
}

func (s Spec) tamperStaleReplay() func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		if !s.active(m) {
			return m
		}
		c := cloneMessage(m)
		c.Stage = 0
		c.Iter = 0
		return c
	}
}

// --- link faults -----------------------------------------------------------

// LinkCorrupt flips Bits pseudo-random bits of every passing message,
// implementing a Byzantine link. It is deterministic given Seed.
type LinkCorrupt struct {
	rng  *rand.Rand
	bits int
}

// NewLinkCorrupt returns a corruptor flipping bits random bits per message.
func NewLinkCorrupt(seed int64, bits int) *LinkCorrupt {
	if bits < 1 {
		bits = 1
	}
	return &LinkCorrupt{rng: rand.New(rand.NewSource(seed)), bits: bits}
}

// Apply implements simnet.LinkFault.
func (c *LinkCorrupt) Apply(raw []byte) [][]byte {
	out := make([]byte, len(raw))
	copy(out, raw)
	for i := 0; i < c.bits && len(out) > 0; i++ {
		pos := c.rng.Intn(len(out))
		out[pos] ^= 1 << uint(c.rng.Intn(8))
	}
	return [][]byte{out}
}

// LinkDrop drops every message after the first Keep messages,
// modelling a link that dies mid-run.
type LinkDrop struct {
	Keep int
	seen int
}

// Apply implements simnet.LinkFault.
func (d *LinkDrop) Apply(raw []byte) [][]byte {
	d.seen++
	if d.seen > d.Keep {
		return nil
	}
	return [][]byte{raw}
}

// LinkDuplicate delivers every message twice — a babbling link.
type LinkDuplicate struct{}

// Apply implements simnet.LinkFault.
func (LinkDuplicate) Apply(raw []byte) [][]byte { return [][]byte{raw, raw} }
