package fault

import (
	"fmt"
	"math/rand"
)

// CmpMode enumerates faulty-comparison behaviours, after Geissmann et
// al. (arXiv:2508.19785): a comparator that lies, persistently for a
// random subset of key pairs or transiently at a rate. Unlike the
// message strategies, a comparison fault never touches a message — the
// faulty node runs the schedule faithfully on wrong answers, so
// detection must come from the application-level predicates.
type CmpMode int

const (
	// CmpPersistent lies deterministically for a fixed pseudo-random
	// subset of unordered key pairs (each pair is faulty with
	// probability Rate, and a faulty pair lies on every evaluation) —
	// Geissmann et al.'s persistent comparison faults.
	CmpPersistent CmpMode = iota + 1
	// CmpTransient lies independently on each comparison with
	// probability Rate — transient comparison faults.
	CmpTransient
)

var cmpModeNames = map[CmpMode]string{
	CmpPersistent: "cmp-persistent",
	CmpTransient:  "cmp-transient",
}

// String returns the mode's kebab-case name.
func (m CmpMode) String() string {
	if n, ok := cmpModeNames[m]; ok {
		return n
	}
	return fmt.Sprintf("cmpmode(%d)", int(m))
}

// AllCmpModes lists every comparison-fault mode, for sweeps.
func AllCmpModes() []CmpMode { return []CmpMode{CmpPersistent, CmpTransient} }

// CmpSpec describes one injected comparison fault.
type CmpSpec struct {
	// Node is the faulty node's label.
	Node int
	// Mode is the lying discipline.
	Mode CmpMode
	// Rate is the lying probability: per unordered key pair for
	// CmpPersistent, per comparison for CmpTransient. 1 lies always.
	Rate float64
	// Seed makes the lie pattern deterministic.
	Seed int64
	// ActivateStage is the first stage at which the comparator lies
	// (>= 1 per environmental assumption 5; the initial local sort and
	// stage 0 run honestly).
	ActivateStage int
}

// Validate rejects malformed specs.
func (s CmpSpec) Validate(nodes int) error {
	if s.Node < 0 || s.Node >= nodes {
		return fmt.Errorf("fault: node %d outside [0,%d)", s.Node, nodes)
	}
	if _, ok := cmpModeNames[s.Mode]; !ok {
		return fmt.Errorf("fault: unknown comparison mode %d", int(s.Mode))
	}
	if s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("fault: comparison lie rate %v outside [0,1]", s.Rate)
	}
	if s.ActivateStage < 1 {
		return fmt.Errorf("fault: activate stage %d violates assumption 5 (must be >= 1)", s.ActivateStage)
	}
	return nil
}

// Comparator builds the stage-aware lying comparator implementing the
// spec, suitable for core.Options.Compare / blocksort.Options.Compare
// at the faulty node. It reports whether a orders at or before b; a lie
// is the negation of the honest a <= b. Deterministic given Seed; for
// CmpTransient the stream is per-comparator state, so build a fresh one
// per run.
func (s CmpSpec) Comparator() func(stage int, a, b int64) bool {
	switch s.Mode {
	case CmpPersistent:
		return func(stage int, a, b int64) bool {
			honest := a <= b
			if stage < s.ActivateStage || !pairLies(s.Seed, a, b, s.Rate) {
				return honest
			}
			return !honest
		}
	case CmpTransient:
		rng := rand.New(rand.NewSource(s.Seed))
		return func(stage int, a, b int64) bool {
			honest := a <= b
			if stage < s.ActivateStage {
				return honest
			}
			// Draw unconditionally so the lie stream depends only on
			// how many post-activation comparisons ran.
			if rng.Float64() >= s.Rate {
				return honest
			}
			return !honest
		}
	default:
		return func(_ int, a, b int64) bool { return a <= b }
	}
}

// pairLies decides, deterministically in (seed, {a,b}), whether the
// unordered pair is one of the persistently lying pairs. It hashes the
// ordered pair with a splitmix64-style mixer and thresholds the result
// against rate, so the same pair lies (or not) on every comparison, in
// either argument order.
func pairLies(seed, a, b int64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if b < a {
		a, b = b, a
	}
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	h ^= uint64(a) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h ^= uint64(b) * 0x94D049BB133111EB
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11)/float64(1<<53) < rate
}
