package fault

import (
	"fmt"

	"repro/internal/core"
)

// Case is one cell of the interleaving explorer's single-fault sweep:
// at most one faulty component, drawn from the full four-way Class
// taxonomy (message, absence, comparison, memory). The zero placement
// (no fault at all) is a Case too — the explorer asserts the fault-free
// protocol sorts under every schedule.
type Case struct {
	// Name uniquely identifies the case within a sweep, e.g.
	// "msg/key-lie/n1/s2" or "mem/mem-stuck/n3".
	Name string
	// Class is the adversary class, 0 for the fault-free case.
	Class Class

	// At most one of the following is non-zero.

	// Msg is a Byzantine message fault (or Silence, observed as
	// absence).
	Msg *Spec
	// Cmp is a lying-comparator fault.
	Cmp *CmpSpec
	// Mem is a resident-memory corruption fault.
	Mem *MemSpec
	// Crashed is the label of a node crashed outright (fail-stop from
	// time zero, modelled as a nil program), -1 when none.
	Crashed int
}

// Faulty returns the faulty node's label, -1 for the fault-free case.
func (c Case) Faulty() int {
	switch {
	case c.Msg != nil:
		return c.Msg.Node
	case c.Cmp != nil:
		return c.Cmp.Node
	case c.Mem != nil:
		return c.Mem.Node
	default:
		return c.Crashed
	}
}

// Options builds the per-node S_FT options implementing the case for an
// n-node cube. Crash cases are expressed by the runner (a nil program),
// not by options.
func (c Case) Options(n int) []core.Options {
	opts := make([]core.Options, n)
	switch {
	case c.Msg != nil:
		opts[c.Msg.Node] = core.Options{SkipChecks: true, Tamper: c.Msg.Tamper()}
	case c.Cmp != nil:
		opts[c.Cmp.Node] = core.Options{SkipChecks: true, Compare: c.Cmp.Comparator()}
	case c.Mem != nil:
		opts[c.Mem.Node] = core.Options{SkipChecks: true, CorruptMemory: c.Mem.Corruptor()}
	}
	return opts
}

// SingleFaultCases enumerates the explorer's sweep menu for a dim-cube:
// the fault-free case, every message strategy at every node for every
// activation stage in [1, dim], a crash of every node, and every
// comparison and memory mode at every node. Deterministic order, fixed
// seeds — the menu itself must be reproducible.
func SingleFaultCases(dim int) []Case {
	n := 1 << uint(dim)
	const (
		lieValue   = 1 << 20
		caseSeed   = 42
		stuckValue = -7
	)
	cases := []Case{{Name: "none", Crashed: -1}}
	for _, st := range AllStrategies() {
		for id := 0; id < n; id++ {
			for stage := 1; stage <= dim; stage++ {
				s := &Spec{Node: id, Strategy: st, ActivateStage: stage, LieValue: lieValue}
				cases = append(cases, Case{
					Name:    fmt.Sprintf("msg/%v/n%d/s%d", st, id, stage),
					Class:   st.Class(),
					Msg:     s,
					Crashed: -1,
				})
			}
		}
	}
	for id := 0; id < n; id++ {
		cases = append(cases, Case{
			Name:    fmt.Sprintf("crash/n%d", id),
			Class:   ClassAbsence,
			Crashed: id,
		})
	}
	for _, m := range AllCmpModes() {
		for id := 0; id < n; id++ {
			s := &CmpSpec{Node: id, Mode: m, Rate: 1, Seed: caseSeed, ActivateStage: 1}
			cases = append(cases, Case{
				Name:    fmt.Sprintf("cmp/%v/n%d", m, id),
				Class:   ClassComparison,
				Cmp:     s,
				Crashed: -1,
			})
		}
	}
	for _, m := range AllMemModes() {
		for id := 0; id < n; id++ {
			s := &MemSpec{Node: id, Mode: m, Rate: 1, Seed: caseSeed, ActivateStage: 1, StuckValue: stuckValue}
			cases = append(cases, Case{
				Name:    fmt.Sprintf("mem/%v/n%d", m, id),
				Class:   ClassMemory,
				Mem:     s,
				Crashed: -1,
			})
		}
	}
	return cases
}
