package fault

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/wire"
)

// cloneMessage returns a deep copy of m — header and payload bytes —
// so tamper hooks can mutate freely without aliasing caller state.
// The runtimes hand hooks a pointer whose payload aliases the sender's
// encode scratch, so a hook that wrote through the pointer would
// corrupt the node it is pretending to be.
func cloneMessage(m *wire.Message) *wire.Message {
	c := *m
	if m.Payload != nil {
		c.Payload = append([]byte(nil), m.Payload...)
	}
	return &c
}

// withPayload returns a copy of m's header carrying the given freshly
// encoded payload — the cheap clone for tampers that re-encode.
func withPayload(m *wire.Message, payload []byte) *wire.Message {
	c := *m
	c.Payload = payload
	return &c
}

// RandomAdversary builds a randomized Byzantine tamper hook: for every
// outgoing message past the activation stage it picks, at random, one
// of several structured or unstructured mutations — key substitution,
// view-value substitution, raw byte corruption, header re-stamping,
// occasional silence, or passing the message through. It is the
// property-based complement to the named strategies: instead of
// testing attacks we thought of, it searches the attack space.
// Deterministic for a given seed. Mutations are applied to a clone:
// the caller's message is never written through.
func RandomAdversary(seed int64, activateStage int) func(m *wire.Message) *wire.Message {
	rng := rand.New(rand.NewSource(seed))
	return func(m *wire.Message) *wire.Message {
		if int(m.Stage) < activateStage {
			return m
		}
		switch rng.Intn(8) {
		case 0: // pass through (intermittent faults are the nastiest)
			return m
		case 1: // silence
			return nil
		case 2: // flip a random payload byte
			if len(m.Payload) == 0 {
				return m
			}
			c := cloneMessage(m)
			c.Payload[rng.Intn(len(c.Payload))] ^= byte(1 + rng.Intn(255))
			return c
		case 3: // re-stamp the header to a random step
			c := cloneMessage(m)
			c.Stage = int32(rng.Intn(4))
			c.Iter = int32(rng.Intn(4))
			return c
		case 4: // swap kind
			kinds := []wire.Kind{wire.KindExchange, wire.KindFTExchange, wire.KindVerify}
			c := cloneMessage(m)
			c.Kind = kinds[rng.Intn(len(kinds))]
			return c
		default: // structured value lies
			switch m.Kind {
			case wire.KindFTExchange:
				p, err := wire.DecodeFTExchange(m.Payload)
				if err != nil {
					return m
				}
				if len(p.Keys) > 0 && rng.Intn(2) == 0 {
					p.Keys[rng.Intn(len(p.Keys))] = rng.Int63n(2000) - 1000
				}
				if len(p.View.Vals) > 0 {
					p.View.Vals[rng.Intn(len(p.View.Vals))] = rng.Int63n(2000) - 1000
				}
				buf, err := wire.EncodeFTExchange(p)
				if err != nil {
					return m
				}
				return withPayload(m, buf)
			case wire.KindVerify:
				p, err := wire.DecodeVerify(m.Payload)
				if err != nil {
					return m
				}
				if len(p.View.Vals) > 0 {
					p.View.Vals[rng.Intn(len(p.View.Vals))] = rng.Int63n(2000) - 1000
				}
				buf, err := wire.EncodeVerify(p)
				if err != nil {
					return m
				}
				return withPayload(m, buf)
			}
			return m
		}
	}
}

// AdversarySearch runs `trials` randomized single-adversary attacks
// (random faulty node, random mutation stream) against S_FT and
// returns the verdict tally. Any SilentWrong is a counterexample to
// the fail-stop guarantee and is reported with its reproduction seed.
func AdversarySearch(dim int, keys []int64, trials int, seed int64, timeout time.Duration) (Summary, []int64, error) {
	n := 1 << uint(dim)
	if len(keys) != n {
		return Summary{}, nil, fmt.Errorf("fault: %d keys for %d nodes", len(keys), n)
	}
	rng := rand.New(rand.NewSource(seed))
	var sum Summary
	var counterexamples []int64
	for trial := 0; trial < trials; trial++ {
		trialSeed := rng.Int63()
		faulty := rng.Intn(n)
		r, err := injectAdversary(dim, keys, faulty, trialSeed, timeout)
		if err != nil {
			return Summary{}, nil, fmt.Errorf("fault: adversary trial %d: %w", trial, err)
		}
		sum.Total++
		switch r {
		case Detected:
			sum.Detected++
		case CorrectDespiteFault:
			sum.CorrectDespiteFault++
		case SilentWrong:
			sum.SilentWrong++
			counterexamples = append(counterexamples, trialSeed)
		}
	}
	return sum, counterexamples, nil
}

func injectAdversary(dim int, keys []int64, faulty int, seed int64, timeout time.Duration) (Verdict, error) {
	spec := Spec{Node: faulty, Strategy: KeyLie, ActivateStage: 1} // placeholder for validation ranges
	if err := spec.Validate(1 << uint(dim)); err != nil {
		return 0, err
	}
	r, err := injectWithTamper(dim, keys, faulty, RandomAdversary(seed, 1), timeout)
	if err != nil {
		return 0, err
	}
	return r, nil
}
