package fault

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/sortnr"
	"repro/internal/wire"
)

const faultTimeout = 60 * time.Millisecond

func paperKeys() []int64 { return []int64{10, 8, 3, 9, 4, 2, 7, 5} }

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantErr bool
	}{
		{"valid", Spec{Node: 1, Strategy: KeyLie, ActivateStage: 1}, false},
		{"node out of range", Spec{Node: 8, Strategy: KeyLie, ActivateStage: 1}, true},
		{"negative node", Spec{Node: -1, Strategy: KeyLie, ActivateStage: 1}, true},
		{"unknown strategy", Spec{Node: 0, Strategy: 99, ActivateStage: 1}, true},
		{"activates at stage 0", Spec{Node: 0, Strategy: KeyLie, ActivateStage: 0}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(8)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestStrategyString(t *testing.T) {
	if KeyLie.String() != "key-lie" || SplitLie.String() != "split-lie" {
		t.Error("strategy names wrong")
	}
	if Strategy(99).String() != "strategy(99)" {
		t.Error("unknown strategy name wrong")
	}
	if len(AllStrategies()) != 9 {
		t.Errorf("AllStrategies has %d entries", len(AllStrategies()))
	}
}

// Every strategy injected at every node of a dim-3 cube must be either
// detected or harmless — never silent-wrong. This is experiment E6.
func TestSFTCoverageNoSilentWrong(t *testing.T) {
	results, err := Coverage(3, paperKeys(), AllStrategies(), 999, faultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if sum.SilentWrong != 0 {
		for _, r := range results {
			if r.Verdict == SilentWrong {
				t.Errorf("SILENT WRONG: node %d strategy %v", r.Spec.Node, r.Spec.Strategy)
			}
		}
		t.Fatalf("summary: %+v", sum)
	}
	if sum.Total != 9*8 {
		t.Errorf("total = %d, want 72", sum.Total)
	}
	// Value-corrupting strategies must overwhelmingly be *detected*,
	// not merely harmless.
	det := 0
	for _, r := range results {
		if r.Verdict == Detected {
			det++
		}
	}
	if det < sum.Total*3/4 {
		t.Errorf("only %d/%d detected", det, sum.Total)
	}
}

// The S_NR contrast: the same key-lie faults must corrupt silently in
// a majority of sites, demonstrating why the paradigm is needed.
func TestSNRContrastSilentlyWrong(t *testing.T) {
	silent := 0
	n := 8
	for id := 0; id < n; id++ {
		spec := Spec{Node: id, Strategy: KeyLie, ActivateStage: 1, LieValue: 999}
		r, err := InjectSNR(3, paperKeys(), spec, faultTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict == SilentWrong {
			silent++
		}
	}
	if silent == 0 {
		t.Fatal("S_NR detected or survived every lie; contrast experiment broken")
	}
}

func TestInjectValidatesInputs(t *testing.T) {
	if _, err := InjectSFT(3, []int64{1}, Spec{Node: 0, Strategy: KeyLie, ActivateStage: 1}, faultTimeout); err == nil {
		t.Error("wrong key count: want error")
	}
	if _, err := InjectSFT(3, paperKeys(), Spec{Node: 0, Strategy: KeyLie, ActivateStage: 0}, faultTimeout); err == nil {
		t.Error("activate stage 0: want error")
	}
	if _, err := InjectSNR(3, []int64{1}, Spec{Node: 0, Strategy: KeyLie, ActivateStage: 1}, faultTimeout); err == nil {
		t.Error("SNR wrong key count: want error")
	}
}

func TestVerdictString(t *testing.T) {
	if Detected.String() != "detected" || SilentWrong.String() != "SILENT-WRONG" ||
		CorrectDespiteFault.String() != "correct-despite-fault" {
		t.Error("verdict names wrong")
	}
	if Verdict(9).String() != "verdict(9)" {
		t.Error("unknown verdict name wrong")
	}
}

func TestStaleReplayDetected(t *testing.T) {
	spec := Spec{Node: 2, Strategy: StaleReplay, ActivateStage: 1}
	r, err := InjectSFT(3, paperKeys(), spec, faultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Detected {
		t.Fatalf("stale replay verdict = %v", r.Verdict)
	}
}

func TestLinkCorruptDetectedBySFT(t *testing.T) {
	nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: faultTimeout})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallLinkFault(2, 3, NewLinkCorrupt(1, 4)); err != nil {
		t.Fatal(err)
	}
	oc, err := runSFTOn(nw, paperKeys())
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatal("corrupted link went undetected")
	}
}

func TestLinkDropDetectedAsAbsence(t *testing.T) {
	nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: faultTimeout})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallLinkFault(0, 1, &LinkDrop{Keep: 1}); err != nil {
		t.Fatal(err)
	}
	oc, err := runSFTOn(nw, paperKeys())
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatal("dropped link went undetected")
	}
}

func TestLinkDuplicateDetected(t *testing.T) {
	// A duplicated message desynchronizes the lockstep schedule: the
	// receiver sees a stale header at the next step.
	nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: faultTimeout})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallLinkFault(4, 5, LinkDuplicate{}); err != nil {
		t.Fatal(err)
	}
	oc, err := runSFTOn(nw, paperKeys())
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatal("duplicated link went undetected")
	}
}

func TestLinkFaultsAgainstSNRSilentOrStall(t *testing.T) {
	// S_NR under a corrupting link: either the run stalls (decode
	// failure surfaces as a node error) or the output silently
	// corrupts. It must never produce a *diagnosed predicate* —
	// there are none. This pins the asymmetry with S_FT.
	nw, err := simnet.New(simnet.Config{Dim: 2, RecvTimeout: faultTimeout})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallLinkFault(0, 1, NewLinkCorrupt(7, 2)); err != nil {
		t.Fatal(err)
	}
	keys := []int64{4, 3, 2, 1}
	out, res, err := sortnr.Run(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	_ = res // any outcome is acceptable except a panic; nothing to assert beyond completion
}

// A crashed node (fail-stop, never ran) must be detected via message
// absence at every position in the cube.
func TestCrashedNodeAlwaysDetected(t *testing.T) {
	for id := 0; id < 8; id++ {
		r, err := InjectCrash(3, paperKeys(), id, faultTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict != Detected {
			t.Errorf("crashed node %d: verdict %v", id, r.Verdict)
		}
	}
	if _, err := InjectCrash(3, []int64{1}, 0, faultTimeout); err == nil {
		t.Error("wrong key count: want error")
	}
	if _, err := InjectCrash(3, paperKeys(), 9, faultTimeout); err == nil {
		t.Error("bad node: want error")
	}
}

func TestTamperHooksPassUnrelatedMessages(t *testing.T) {
	spec := Spec{Node: 0, Strategy: KeyLie, ActivateStage: 2, LieValue: 7}
	h := spec.Tamper()
	m := &wire.Message{Kind: wire.KindFTExchange, Stage: 1}
	if got := h(m); got != m {
		t.Error("hook modified a pre-activation message")
	}
	verify := &wire.Message{Kind: wire.KindVerify, Stage: 3}
	if got := h(verify); got != verify {
		t.Error("key-lie hook modified a verify message")
	}
}

func runSFTOn(nw *simnet.Network, keys []int64) (interface{ Detected() bool }, error) {
	return core.Run(nw, keys)
}
