package fault

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/obs/forensic"
	"repro/internal/simnet"
	"repro/internal/sortnr"
	"repro/internal/wire"
)

// Verdict classifies one fault-injection run.
type Verdict int

const (
	// Detected means some honest node signalled an error (fail-stop).
	Detected Verdict = iota + 1
	// CorrectDespiteFault means the run completed with no detection
	// and the output was nonetheless a correct sort (the lie happened
	// to be consistent with the true data).
	CorrectDespiteFault
	// SilentWrong means the run completed undetected with a wrong
	// output — the outcome Theorem 3 forbids for S_FT.
	SilentWrong
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Detected:
		return "detected"
	case CorrectDespiteFault:
		return "correct-despite-fault"
	case SilentWrong:
		return "SILENT-WRONG"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Result is the outcome of one injected-fault run.
type Result struct {
	// Spec is the message-fault spec, zero for comparison and memory
	// faults (which are described by CmpSpec / MemSpec instead).
	Spec    Spec
	Verdict Verdict
	// Class is the adversary class injected (message, absence,
	// comparison, memory).
	Class Class
	// Label names the concrete strategy or mode within the class,
	// e.g. "key-lie" or "mem-stuck".
	Label string
	// Predicate is the predicate class of the earliest detection
	// evidence that reached the host (when Detected).
	Predicate string
	// Detector is the coverage-matrix column the detection falls in:
	// the predicate name, "absence" when the earliest evidence is a
	// missing message, or "node-local" when a node fail-stopped
	// without its ERROR reaching the host. Empty when not Detected.
	Detector string
	// Accused is the node the earliest detection evidence implicates;
	// -1 when the evidence names no culprit or the detection was
	// node-local. Meaningful only when Verdict is Detected.
	Accused int
	// Forensic is the flight-recorder dump taken by the accusing node
	// at detection time: the accusation's causal message chain and the
	// per-node event rings. Nil when the run was not Detected (or the
	// detection never produced an accusation, e.g. a node-local
	// fail-stop with no evidence record).
	Forensic *forensic.Report
}

// EarliestEvidence picks the canonical detection evidence from a drained
// host mailbox: the earliest by (stage, iter, node). Every consumer of
// host evidence keys off this order rather than arrival order, which is
// what lets the explorer fold host-drain histories commutatively.
func EarliestEvidence(errs []core.HostError) (core.HostError, bool) {
	return earliestHostError(errs)
}

// earliestHostError picks the detection evidence deterministically:
// host-mailbox drain order races between node goroutines, so the
// matrix keys off the earliest (stage, iter, node) evidence instead of
// arrival order.
func earliestHostError(errs []core.HostError) (core.HostError, bool) {
	if len(errs) == 0 {
		return core.HostError{}, false
	}
	best := errs[0]
	for _, he := range errs[1:] {
		if he.Stage < best.Stage ||
			(he.Stage == best.Stage && he.Iter < best.Iter) ||
			(he.Stage == best.Stage && he.Iter == best.Iter && he.Node < best.Node) {
			best = he
		}
	}
	return best, true
}

// classify fills a Result's detection fields from a finished run's
// host evidence.
func (r *Result) classify(detected bool, errs []core.HostError) {
	r.Accused = -1
	if !detected {
		return
	}
	r.Verdict = Detected
	he, ok := earliestHostError(errs)
	if !ok {
		r.Detector = "node-local"
		return
	}
	r.Predicate = he.Predicate
	r.Accused = he.Accused
	if he.Kind == core.KindAbsence {
		r.Detector = "absence"
	} else {
		r.Detector = he.Predicate
	}
}

// attachForensic pairs a classified Detected result with the flight
// dump its earliest host evidence triggered, matching on the
// (accuser, stage, iter, predicate) coordinate; when the earliest
// evidence produced no dump (raced rings, node-local detection) the
// latest dump stands in, and a run with no dumps leaves Forensic nil.
func (r *Result) attachForensic(flight *forensic.Flight, errs []core.HostError) {
	if r.Verdict != Detected || flight == nil {
		return
	}
	reports := flight.Reports()
	if len(reports) == 0 {
		return
	}
	if he, ok := earliestHostError(errs); ok {
		for _, rep := range reports {
			if int(rep.Accuser) == he.Node && int(rep.Stage) == he.Stage &&
				int(rep.Iter) == he.Iter && rep.Predicate == he.Predicate {
				r.Forensic = rep
				return
			}
		}
	}
	r.Forensic = reports[len(reports)-1]
}

// InjectSFT runs S_FT on a fresh network with one Byzantine processor
// per the spec and classifies the outcome. The timeout bounds how long
// absence detection waits; keep it short (tens of milliseconds) since
// fail-stop cascades serialize on it.
func InjectSFT(dim int, keys []int64, spec Spec, timeout time.Duration) (Result, error) {
	n := 1 << uint(dim)
	if err := spec.Validate(n); err != nil {
		return Result{}, err
	}
	if len(keys) != n {
		return Result{}, fmt.Errorf("fault: %d keys for %d nodes", len(keys), n)
	}
	flight := forensic.New(0)
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: timeout, Flight: flight})
	if err != nil {
		return Result{}, err
	}
	opts := make([]core.Options, n)
	opts[spec.Node] = core.Options{SkipChecks: true, Tamper: spec.Tamper()}
	for i := range opts {
		opts[i].Forensic = flight.Node(i)
	}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		return Result{}, err
	}
	res := Result{Spec: spec, Class: spec.Strategy.Class(), Label: spec.Strategy.String()}
	if oc.Detected() {
		res.classify(true, oc.HostErrors)
		res.attachForensic(flight, oc.HostErrors)
		return res, nil
	}
	if cerr := checker.Verify(keys, oc.Sorted, true); cerr != nil {
		res.Verdict = SilentWrong
	} else {
		res.Verdict = CorrectDespiteFault
	}
	return res, nil
}

// injectWithTamper runs S_FT with an arbitrary tamper hook at one node
// and classifies the outcome.
func injectWithTamper(dim int, keys []int64, faulty int, tamper func(*wire.Message) *wire.Message, timeout time.Duration) (Verdict, error) {
	n := 1 << uint(dim)
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: timeout})
	if err != nil {
		return 0, err
	}
	opts := make([]core.Options, n)
	opts[faulty] = core.Options{SkipChecks: true, Tamper: tamper}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		return 0, err
	}
	switch {
	case oc.Detected():
		return Detected, nil
	case checker.Verify(keys, oc.Sorted, true) != nil:
		return SilentWrong, nil
	default:
		return CorrectDespiteFault, nil
	}
}

// InjectSNR runs the unreliable S_NR under the same fault spec, for
// the contrast experiment: S_NR has no detection machinery, so lies
// become silent corruption.
func InjectSNR(dim int, keys []int64, spec Spec, timeout time.Duration) (Result, error) {
	n := 1 << uint(dim)
	if err := spec.Validate(n); err != nil {
		return Result{}, err
	}
	if len(keys) != n {
		return Result{}, fmt.Errorf("fault: %d keys for %d nodes", len(keys), n)
	}
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: timeout})
	if err != nil {
		return Result{}, err
	}
	out := make([]int64, n)
	progs := make([]node.Program, n)
	for id := 0; id < n; id++ {
		o := sortnr.Options{}
		if id == spec.Node {
			o.Tamper = snrTamper(spec)
		}
		progs[id] = sortnr.NodeProgram(keys[id], &out[id], o)
	}
	runRes, err := node.RunPer(nw, progs, nil)
	if err != nil {
		return Result{}, err
	}
	res := Result{Spec: spec, Class: spec.Strategy.Class(), Label: spec.Strategy.String()}
	if runRes.AnyErr() != nil {
		// S_NR can only "detect" absence (timeouts), not value lies.
		res.Verdict = Detected
		res.Detector = "node-local"
		return res, nil
	}
	if cerr := checker.Verify(keys, out, true); cerr != nil {
		res.Verdict = SilentWrong
	} else {
		res.Verdict = CorrectDespiteFault
	}
	return res, nil
}

// snrTamper adapts a Spec to S_NR's plain key messages: value lies and
// silence keep their meaning; view-level strategies (which have no
// view to attack in S_NR) degenerate to key lies.
func snrTamper(spec Spec) func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		if int(m.Stage) < spec.ActivateStage || m.Kind != wire.KindExchange {
			return m
		}
		if spec.Strategy == Silence {
			return nil
		}
		p, err := wire.DecodeExchange(m.Payload)
		if err != nil || len(p.Keys) == 0 {
			return m
		}
		switch spec.Strategy {
		case WrongCompare:
			if len(p.Keys) >= 2 {
				p.Keys[0], p.Keys[1] = p.Keys[1], p.Keys[0]
			} else {
				p.Keys[0] = spec.LieValue
			}
		default:
			for i := range p.Keys {
				p.Keys[i] = spec.LieValue
			}
		}
		return withPayload(m, wire.EncodeExchange(p))
	}
}

// Coverage sweeps the given strategies over every node of the cube and
// returns one Result per (strategy, node) pair, in (strategy, node)
// order. Runs use independent networks and execute concurrently.
func Coverage(dim int, keys []int64, strategies []Strategy, lie int64, timeout time.Duration) ([]Result, error) {
	n := 1 << uint(dim)
	type job struct{ strat, node int }
	jobs := make([]job, 0, len(strategies)*n)
	for si := range strategies {
		for id := 0; id < n; id++ {
			jobs = append(jobs, job{strat: si, node: id})
		}
	}
	out := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, 8) // bound concurrent simulations
	var wg sync.WaitGroup
	for i, jb := range jobs {
		wg.Add(1)
		go func(i int, jb job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec := Spec{Node: jb.node, Strategy: strategies[jb.strat], ActivateStage: 1, LieValue: lie}
			r, err := InjectSFT(dim, keys, spec, timeout)
			if err != nil {
				errs[i] = fmt.Errorf("fault: coverage %v node %d: %w", spec.Strategy, jb.node, err)
				return
			}
			out[i] = r
		}(i, jb)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// InjectCrash runs S_FT with one node crashed outright (it never
// executes a single protocol step — fail-stop from time zero). Its
// partners observe message absence, which environmental assumption 4
// makes detectable; the run must never complete with a wrong output.
func InjectCrash(dim int, keys []int64, crashed int, timeout time.Duration) (Result, error) {
	n := 1 << uint(dim)
	if len(keys) != n {
		return Result{}, fmt.Errorf("fault: %d keys for %d nodes", len(keys), n)
	}
	if crashed < 0 || crashed >= n {
		return Result{}, fmt.Errorf("fault: crashed node %d outside [0,%d)", crashed, n)
	}
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: timeout})
	if err != nil {
		return Result{}, err
	}
	out := make([]int64, n)
	progs := make([]node.Program, n)
	for id := 0; id < n; id++ {
		if id == crashed {
			continue // nil program: the node is dead
		}
		progs[id] = core.NodeProgram(keys[id], &out[id], core.Options{})
	}
	runRes, err := node.RunPer(nw, progs, nil)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Spec:  Spec{Node: crashed, Strategy: Silence, ActivateStage: 1},
		Class: ClassAbsence, Label: Silence.String(),
	}
	if runRes.AnyErr() != nil {
		res.Verdict = Detected
		res.Detector = "node-local"
		return res, nil
	}
	// With a dead node the gather can never complete, so reaching here
	// would mean the protocol terminated without it — classify by
	// output correctness to surface any such bug.
	if cerr := checker.Verify(keys, out, true); cerr != nil {
		res.Verdict = SilentWrong
	} else {
		res.Verdict = CorrectDespiteFault
	}
	return res, nil
}

// Summary tallies verdicts.
type Summary struct {
	Total               int
	Detected            int
	CorrectDespiteFault int
	SilentWrong         int
}

// Summarize folds results into a Summary.
func Summarize(results []Result) Summary {
	var s Summary
	for _, r := range results {
		s.Total++
		switch r.Verdict {
		case Detected:
			s.Detected++
		case CorrectDespiteFault:
			s.CorrectDespiteFault++
		case SilentWrong:
			s.SilentWrong++
		}
	}
	return s
}
