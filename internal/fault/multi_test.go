package fault

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/wire"
)

// Theorem 3's multi-fault reach: with two simultaneous, independently
// lying Byzantine processors (the n−1 bound for an 8-node cube), no
// pair placement may produce a silently wrong result.
func TestPairwiseFaultsNeverSilentlyWrong(t *testing.T) {
	res, err := CoveragePairs(3, paperKeys(), KeyLie, 900, faultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeMulti(res)
	if sum.Total != 28 {
		t.Fatalf("pairs = %d, want 28", sum.Total)
	}
	if sum.SilentWrong != 0 {
		for _, r := range res {
			if r.Verdict == SilentWrong {
				t.Errorf("SILENT WRONG: pair (%d,%d)", r.Specs[0].Node, r.Specs[1].Node)
			}
		}
		t.Fatalf("summary: %+v", sum)
	}
	if sum.Detected < sum.Total*3/4 {
		t.Errorf("only %d/%d pairs detected", sum.Detected, sum.Total)
	}
}

func TestPairwiseSplitLies(t *testing.T) {
	res, err := CoveragePairs(3, paperKeys(), SplitLie, 700, faultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if sum := SummarizeMulti(res); sum.SilentWrong != 0 {
		t.Fatalf("split-lie pairs: %+v", sum)
	}
}

// Random triples on a 16-node cube (the n−1 = 3 bound) with mixed
// strategies: still never silently wrong.
func TestRandomTriplesNeverSilentlyWrong(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dim := 4
	n := 1 << uint(dim)
	keys := paperKeys()
	keys = append(keys, 12, 1, 6, 11, 14, 0, 13, 15) // extend to 16
	strategies := []Strategy{KeyLie, SplitLie, ViewLie, WrongCompare}
	for trial := 0; trial < 12; trial++ {
		perm := rng.Perm(n)
		specs := []Spec{
			{Node: perm[0], Strategy: strategies[rng.Intn(len(strategies))], ActivateStage: 1, LieValue: 500},
			{Node: perm[1], Strategy: strategies[rng.Intn(len(strategies))], ActivateStage: 1, LieValue: 600},
			{Node: perm[2], Strategy: strategies[rng.Intn(len(strategies))], ActivateStage: 1, LieValue: 700},
		}
		r, err := InjectSFTMulti(dim, keys, specs, faultTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict == SilentWrong {
			t.Fatalf("trial %d: silent wrong with specs %+v", trial, specs)
		}
	}
}

// Randomized adversary search: no mutation stream found in the trial
// budget may produce a silently wrong output. Failures print the
// reproduction seeds.
func TestAdversarySearchFindsNoSilentWrong(t *testing.T) {
	sum, counterexamples, err := AdversarySearch(3, paperKeys(), 40, 20260706, faultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SilentWrong != 0 {
		t.Fatalf("adversary found %d silent-wrong runs; repro seeds %v", sum.SilentWrong, counterexamples)
	}
	if sum.Total != 40 {
		t.Errorf("total = %d", sum.Total)
	}
	// The adversary must actually be disruptive most of the time, not
	// accidentally benign.
	if sum.Detected < 20 {
		t.Errorf("only %d/40 adversarial runs detected; adversary too tame", sum.Detected)
	}
}

func TestAdversarySearchValidation(t *testing.T) {
	if _, _, err := AdversarySearch(3, []int64{1}, 5, 1, faultTimeout); err == nil {
		t.Error("wrong key count: want error")
	}
}

func TestRandomAdversaryDeterministic(t *testing.T) {
	m := func() *wire.Message {
		return &wire.Message{Kind: wire.KindFTExchange, Stage: 2, Payload: []byte{1, 2, 3, 4, 5}}
	}
	a := RandomAdversary(7, 1)
	b := RandomAdversary(7, 1)
	for i := 0; i < 50; i++ {
		x, y := a(m()), b(m())
		if (x == nil) != (y == nil) {
			t.Fatal("adversaries diverged on drop decision")
		}
		if x != nil && string(x.Payload) != string(y.Payload) {
			t.Fatal("adversaries diverged on mutation")
		}
	}
	// Pre-activation messages pass through untouched.
	early := &wire.Message{Kind: wire.KindFTExchange, Stage: 0, Payload: []byte{9}}
	if got := a(early); got != early {
		t.Error("pre-activation message modified")
	}
}

func TestInjectSFTMultiValidation(t *testing.T) {
	good := Spec{Node: 1, Strategy: KeyLie, ActivateStage: 1}
	if _, err := InjectSFTMulti(3, []int64{1}, []Spec{good}, faultTimeout); err == nil {
		t.Error("wrong key count: want error")
	}
	if _, err := InjectSFTMulti(3, paperKeys(), []Spec{good, good}, faultTimeout); err == nil {
		t.Error("duplicate node: want error")
	}
	bad := Spec{Node: 99, Strategy: KeyLie, ActivateStage: 1}
	if _, err := InjectSFTMulti(3, paperKeys(), []Spec{bad}, faultTimeout); err == nil {
		t.Error("invalid node: want error")
	}
}

// A single-element specs list must agree with InjectSFT's verdicts.
func TestMultiDegeneratesToSingle(t *testing.T) {
	spec := Spec{Node: 2, Strategy: KeyLie, ActivateStage: 1, LieValue: 999}
	single, err := InjectSFT(3, paperKeys(), spec, faultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := InjectSFTMulti(3, paperKeys(), []Spec{spec}, faultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if single.Verdict != multi.Verdict {
		t.Errorf("single %v vs multi %v", single.Verdict, multi.Verdict)
	}
}

func TestZeroFaultMultiIsClean(t *testing.T) {
	r, err := InjectSFTMulti(3, paperKeys(), nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != CorrectDespiteFault {
		t.Errorf("verdict = %v on fault-free run", r.Verdict)
	}
}
