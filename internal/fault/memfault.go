package fault

import (
	"fmt"
	"math/rand"
)

// MemMode enumerates faulty-memory behaviours, after Kopelowitz &
// Talmon (arXiv:1204.5229): resident memory cells that corrupt between
// accesses. The corruption strikes the node's resident key slice at
// stage boundaries — the node then proceeds honestly on the corrupted
// state, so (as with comparison faults) no message is ever tampered
// and detection falls to the application-level predicates at honest
// peers.
type MemMode int

const (
	// MemFlip flips one random bit of each affected cell — a soft
	// error in a value word.
	MemFlip MemMode = iota + 1
	// MemStuck resets each affected cell to the stuck value — a
	// stuck-at cell re-read between stages.
	MemStuck
	// MemWipe overwrites a random contiguous region with the stuck
	// value — a lost page or row.
	MemWipe
)

var memModeNames = map[MemMode]string{
	MemFlip:  "mem-flip",
	MemStuck: "mem-stuck",
	MemWipe:  "mem-wipe",
}

// String returns the mode's kebab-case name.
func (m MemMode) String() string {
	if n, ok := memModeNames[m]; ok {
		return n
	}
	return fmt.Sprintf("memmode(%d)", int(m))
}

// AllMemModes lists every memory-fault mode, for sweeps.
func AllMemModes() []MemMode { return []MemMode{MemFlip, MemStuck, MemWipe} }

// MemSpec describes one injected memory fault.
type MemSpec struct {
	// Node is the node with faulty memory.
	Node int
	// Mode is the corruption discipline.
	Mode MemMode
	// Rate is the corruption probability per stage boundary: per cell
	// for MemFlip and MemStuck, per boundary (one region) for MemWipe.
	Rate float64
	// Seed makes the corruption pattern deterministic.
	Seed int64
	// ActivateStage is the first stage boundary at which memory
	// corrupts (>= 1 per environmental assumption 5; a corruption
	// before the first exchange would amount to different input data).
	ActivateStage int
	// StuckValue is what stuck-at cells and wiped regions read back.
	StuckValue int64
}

// Validate rejects malformed specs.
func (s MemSpec) Validate(nodes int) error {
	if s.Node < 0 || s.Node >= nodes {
		return fmt.Errorf("fault: node %d outside [0,%d)", s.Node, nodes)
	}
	if _, ok := memModeNames[s.Mode]; !ok {
		return fmt.Errorf("fault: unknown memory mode %d", int(s.Mode))
	}
	if s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("fault: memory corruption rate %v outside [0,1]", s.Rate)
	}
	if s.ActivateStage < 1 {
		return fmt.Errorf("fault: activate stage %d violates assumption 5 (must be >= 1)", s.ActivateStage)
	}
	return nil
}

// Corruptor builds the stage-boundary corruption hook implementing the
// spec, suitable for core.Options.CorruptMemory /
// blocksort.Options.CorruptMemory at the faulty node. It mutates the
// resident key slice in place. Deterministic given Seed; the random
// stream is per-corruptor state, so build a fresh one per run.
func (s MemSpec) Corruptor() func(stage int, keys []int64) {
	rng := rand.New(rand.NewSource(s.Seed))
	return func(stage int, keys []int64) {
		if stage < s.ActivateStage || len(keys) == 0 {
			return
		}
		switch s.Mode {
		case MemFlip:
			for i := range keys {
				if rng.Float64() < s.Rate {
					keys[i] ^= 1 << uint(rng.Intn(63))
				}
			}
		case MemStuck:
			for i := range keys {
				if rng.Float64() < s.Rate {
					keys[i] = s.StuckValue
				}
			}
		case MemWipe:
			if rng.Float64() < s.Rate {
				lo := rng.Intn(len(keys))
				hi := lo + 1 + rng.Intn(len(keys)-lo)
				for i := lo; i < hi; i++ {
					keys[i] = s.StuckValue
				}
			}
		}
	}
}
