package node

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

func newNet(t *testing.T, dim int) *simnet.Network {
	t.Helper()
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// ringExchange has every node send its id across bit 0 and receive the
// partner's id back, verifying harness plumbing end to end.
func ringExchange(ep transport.Endpoint) error {
	msg := wire.Message{Kind: wire.KindExchange,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{int64(ep.ID())}})}
	if err := ep.Send(0, msg); err != nil {
		return err
	}
	got, err := ep.Recv(0)
	if err != nil {
		return err
	}
	p, err := wire.DecodeExchange(got.Payload)
	if err != nil {
		return err
	}
	want := int64(ep.ID() ^ 1)
	if p.Keys[0] != want {
		return errors.New("wrong partner id")
	}
	ep.ChargeCompare(1)
	return nil
}

func TestRunAllNodesSucceed(t *testing.T) {
	nw := newNet(t, 3)
	res, err := Run(nw, ringExchange, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AnyErr(); err != nil {
		t.Fatal(err)
	}
	if res.Makespan() == 0 {
		t.Error("makespan = 0")
	}
	if res.TotalNodeComm() == 0 || res.TotalNodeComp() == 0 {
		t.Error("comm/comp ticks not recorded")
	}
	if res.MaxNodeComm() == 0 || res.MaxNodeComp() == 0 {
		t.Error("max comm/comp ticks not recorded")
	}
	if res.Metrics.MsgsByKind[wire.KindExchange] != 8 {
		t.Errorf("exchange msgs = %d, want 8", res.Metrics.MsgsByKind[wire.KindExchange])
	}
}

func TestRunWithHost(t *testing.T) {
	nw := newNet(t, 1)
	prog := func(ep transport.Endpoint) error {
		return ep.SendHost(wire.Message{Kind: wire.KindHostUpload,
			Payload: wire.EncodeHost(wire.HostPayload{Keys: []int64{int64(ep.ID())}})})
	}
	hostProg := func(h transport.Host) error {
		seen := 0
		for seen < 2 {
			if _, err := h.Recv(); err != nil {
				return err
			}
			seen++
		}
		return nil
	}
	res, err := Run(nw, prog, hostProg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostErr != nil {
		t.Fatal(res.HostErr)
	}
	if res.HostClock == 0 || res.HostComm == 0 {
		t.Error("host clocks not recorded")
	}
}

func TestNodeErrorIsReported(t *testing.T) {
	nw := newNet(t, 2)
	boom := errors.New("boom")
	prog := func(ep transport.Endpoint) error {
		if ep.ID() == 2 {
			return boom
		}
		return nil
	}
	res, err := Run(nw, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	ferr := res.FirstNodeErr()
	if !errors.Is(ferr, boom) {
		t.Fatalf("FirstNodeErr = %v", ferr)
	}
	if !strings.Contains(ferr.Error(), "node 2") {
		t.Errorf("error %q does not name node 2", ferr)
	}
	if res.Nodes[0].Err != nil || res.Nodes[2].Err == nil {
		t.Error("per-node error placement wrong")
	}
}

func TestPanicBecomesError(t *testing.T) {
	nw := newNet(t, 1)
	prog := func(ep transport.Endpoint) error {
		if ep.ID() == 1 {
			panic("byzantine meltdown")
		}
		return nil
	}
	res, err := Run(nw, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[1].Err == nil || !strings.Contains(res.Nodes[1].Err.Error(), "panicked") {
		t.Fatalf("panic not converted: %v", res.Nodes[1].Err)
	}
}

func TestHostPanicBecomesError(t *testing.T) {
	nw := newNet(t, 1)
	res, err := Run(nw, func(transport.Endpoint) error { return nil },
		func(transport.Host) error { panic("host bug") })
	if err != nil {
		t.Fatal(err)
	}
	if res.HostErr == nil || !strings.Contains(res.HostErr.Error(), "panicked") {
		t.Fatalf("host panic not converted: %v", res.HostErr)
	}
	if res.AnyErr() == nil {
		t.Error("AnyErr missed host error")
	}
}

func TestRunPerSilentNode(t *testing.T) {
	nw, err := simnet.New(simnet.Config{Dim: 1, RecvTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	progs := []Program{
		func(ep transport.Endpoint) error { // node 0 expects a message that never comes
			_, err := ep.Recv(0)
			return err
		},
		nil, // node 1 is crashed
	}
	res, err := RunPer(nw, progs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Nodes[0].Err, simnet.ErrAbsent) {
		t.Fatalf("node 0 err = %v, want ErrAbsent", res.Nodes[0].Err)
	}
	if res.Nodes[1].Err != nil {
		t.Error("crashed node should have nil error (it never ran)")
	}
}

func TestRunPerLengthValidation(t *testing.T) {
	nw := newNet(t, 2)
	if _, err := RunPer(nw, make([]Program, 3), nil); err == nil {
		t.Error("wrong program count: want error")
	}
}

func TestMakespanIsMaxClock(t *testing.T) {
	nw := newNet(t, 1)
	prog := func(ep transport.Endpoint) error {
		if ep.ID() == 0 {
			ep.Compute(1000)
		} else {
			ep.Compute(10)
		}
		return nil
	}
	res, err := Run(nw, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != 1000 {
		t.Errorf("makespan = %d, want 1000", res.Makespan())
	}
}
