// Package node runs one goroutine per simulated node processor plus an
// optional host goroutine, and collects per-node outcomes and virtual
// clocks. It is the execution harness shared by every algorithm in the
// repository (S_NR, S_FT, host baselines, block sorting).
package node

import (
	"fmt"
	"sync"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Program is the code a node processor executes. It runs in its own
// goroutine against its private endpoint; all inter-node interaction
// flows through the endpoint, mirroring a multicomputer's private
// memory model.
type Program func(ep transport.Endpoint) error

// HostProgram is the code the host processor executes.
type HostProgram func(h transport.Host) error

// NodeOutcome captures one node's result: its terminal error (nil on
// success) and its final virtual clocks.
type NodeOutcome struct {
	Err       error
	Clock     transport.Ticks
	CommTicks transport.Ticks
	CompTicks transport.Ticks
}

// Result aggregates a whole run.
type Result struct {
	Nodes []NodeOutcome
	// HostErr is the host program's terminal error, nil when no host
	// program ran or it succeeded.
	HostErr error
	// HostClock, HostComm, HostComp are the host's virtual clocks.
	HostClock transport.Ticks
	HostComm  transport.Ticks
	HostComp  transport.Ticks
	// Metrics is the network traffic snapshot at run end.
	Metrics transport.MetricsSnapshot
}

// Makespan returns the run's virtual completion time: the maximum of
// every node clock and the host clock.
func (r *Result) Makespan() transport.Ticks {
	max := r.HostClock
	for _, n := range r.Nodes {
		if n.Clock > max {
			max = n.Clock
		}
	}
	return max
}

// FirstNodeErr returns the error of the lowest-numbered failed node,
// or nil when every node succeeded.
func (r *Result) FirstNodeErr() error {
	for id, n := range r.Nodes {
		if n.Err != nil {
			return fmt.Errorf("node %d: %w", id, n.Err)
		}
	}
	return nil
}

// AnyErr returns the first node error or the host error, nil if none.
func (r *Result) AnyErr() error {
	if err := r.FirstNodeErr(); err != nil {
		return err
	}
	return r.HostErr
}

// TotalNodeComm sums communication ticks across all nodes.
func (r *Result) TotalNodeComm() transport.Ticks {
	var t transport.Ticks
	for _, n := range r.Nodes {
		t += n.CommTicks
	}
	return t
}

// TotalNodeComp sums computation ticks across all nodes.
func (r *Result) TotalNodeComp() transport.Ticks {
	var t transport.Ticks
	for _, n := range r.Nodes {
		t += n.CompTicks
	}
	return t
}

// MaxNodeComm returns the largest per-node communication tick count —
// the per-node comm time of the critical path, which is what the
// paper's component-time table reports.
func (r *Result) MaxNodeComm() transport.Ticks {
	var t transport.Ticks
	for _, n := range r.Nodes {
		if n.CommTicks > t {
			t = n.CommTicks
		}
	}
	return t
}

// MaxNodeComp returns the largest per-node computation tick count.
func (r *Result) MaxNodeComp() transport.Ticks {
	var t transport.Ticks
	for _, n := range r.Nodes {
		if n.CompTicks > t {
			t = n.CompTicks
		}
	}
	return t
}

// Run executes prog on every node of the network (and hostProg on the
// host when non-nil), waits for all of them, and returns the collected
// outcomes. A panic inside a node program is converted into that
// node's error so a misbehaving (fault-injected) node cannot take the
// harness down. Programs may be nil per node via RunPer.
func Run(nw transport.Network, prog Program, hostProg HostProgram) (*Result, error) {
	n := nw.Topology().Nodes()
	progs := make([]Program, n)
	for i := range progs {
		progs[i] = prog
	}
	return RunPer(nw, progs, hostProg)
}

// RunPer is Run with a distinct program per node, used by the fault
// injector to replace selected nodes with Byzantine variants. A nil
// program models a crashed (fail-stop, silent) node: it performs no
// protocol actions at all.
func RunPer(nw transport.Network, progs []Program, hostProg HostProgram) (*Result, error) {
	n := nw.Topology().Nodes()
	if len(progs) != n {
		return nil, fmt.Errorf("node: %d programs for %d nodes", len(progs), n)
	}
	eps := make([]transport.Endpoint, n)
	for id := 0; id < n; id++ {
		ep, err := nw.Endpoint(id)
		if err != nil {
			return nil, fmt.Errorf("node: %w", err)
		}
		eps[id] = ep
	}
	host := nw.Host()

	// Controlled-scheduler networks need the full worker census before
	// any worker runs: delivery decisions wait for every live worker to
	// block, so a late-declared worker would let a decision fire on an
	// incomplete picture (and an undeclared crashed node would stall
	// quiescence forever).
	wc, _ := nw.(transport.WorkerControl)
	if wc != nil {
		for id := 0; id < n; id++ {
			if progs[id] != nil {
				wc.WorkerStart(id)
			}
		}
		if hostProg != nil {
			wc.WorkerStart(int(wire.HostID))
		}
	}

	res := &Result{Nodes: make([]NodeOutcome, n)}
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		if progs[id] == nil {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if wc != nil {
				defer wc.WorkerDone(id)
			}
			res.Nodes[id].Err = runGuarded(id, progs[id], eps[id])
		}(id)
	}
	if hostProg != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if wc != nil {
				defer wc.WorkerDone(int(wire.HostID))
			}
			res.HostErr = runHostGuarded(hostProg, host)
		}()
	}
	wg.Wait()

	for id := 0; id < n; id++ {
		res.Nodes[id].Clock = eps[id].Clock()
		res.Nodes[id].CommTicks = eps[id].CommTicks()
		res.Nodes[id].CompTicks = eps[id].CompTicks()
	}
	res.HostClock = host.Clock()
	res.HostComm = host.CommTicks()
	res.HostComp = host.CompTicks()
	res.Metrics = nw.Metrics()
	return res, nil
}

func runGuarded(id int, prog Program, ep transport.Endpoint) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("node %d: program panicked: %v", id, r)
		}
	}()
	return prog(ep)
}

func runHostGuarded(prog HostProgram, h transport.Host) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("host: program panicked: %v", r)
		}
	}()
	return prog(h)
}
